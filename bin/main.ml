(* mintotal-dbp: command-line front end.

   Subcommands: generate / simulate / opt / adversary / decompose /
   offline / diff / stats / experiments / faults / gaming / dvbp /
   bench / trace / checkpoint / repack / metrics / check / serve.
   See README.md for a tour. *)

open Cmdliner
open Dbp_num
open Dbp_core

(* ---- shared argument converters ---------------------------------- *)

let rat_conv =
  let parse s =
    match Rat.of_string s with
    | r -> Ok r
    | exception Failure msg -> Error (`Msg msg)
  in
  Arg.conv (parse, Rat.pp)

let policy_arg =
  let doc =
    "Packing policy: first-fit, best-fit, worst-fit, last-fit, next-fit, \
     random-fit, mff, mff:<k> (e.g. mff:9/2)."
  in
  Arg.(value & opt string "first-fit" & info [ "p"; "policy" ] ~doc)

let seed_arg =
  Arg.(value & opt int64 42L & info [ "seed" ] ~doc:"PRNG seed.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log every placement decision.")

let setup_verbose verbose =
  if verbose then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.Src.set_level Simulator.log_src (Some Logs.Debug)
  end

let trace_arg ~doc = Arg.(required & opt (some file) None & info [ "trace" ] ~doc)

let load_trace path =
  match Dbp_workload.Trace.load ~path with
  | instance -> instance
  | exception Dbp_workload.Trace.Parse_error e ->
      Format.eprintf "%s: %s@." path (Dbp_workload.Trace.parse_error_to_string e);
      exit 2
  | exception Sys_error msg ->
      Format.eprintf "%s@." msg;
      exit 2

let resolve_policy ?mu name =
  match Algorithms.find ?mu name with
  | Some p -> p
  | None ->
      Format.eprintf "unknown policy %s (known: %s)@." name
        (String.concat ", " Algorithms.names);
      exit 2

(* Perf-floor files (bench-floor.txt, serve-floor.txt): first
   non-comment line is the floor, in events per second. *)
let read_floor path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go lineno =
        match input_line ic with
        | line -> (
            let line = String.trim line in
            if line = "" || line.[0] = '#' then go (lineno + 1)
            else
              (* [float_of_string] alone fails with the unhelpful
                 "float_of_string"; name the offending line. *)
              match float_of_string_opt line with
              | Some f -> f
              | None ->
                  failwith
                    (Printf.sprintf "%s: line %d is not a number: %S" path
                       lineno line))
        | exception End_of_file ->
            failwith (path ^ ": no floor value found")
      in
      go 1)

(* ---- generate ------------------------------------------------------ *)

let generate_cmd =
  let count =
    Arg.(value & opt int 200 & info [ "n"; "count" ] ~doc:"Number of items.")
  in
  let mu =
    Arg.(value & opt float 10.0 & info [ "mu" ] ~doc:"Target max/min interval ratio.")
  in
  let small =
    Arg.(value & opt (some int) None
         & info [ "small" ] ~doc:"Restrict sizes to < W/$(docv)." ~docv:"K")
  in
  let large =
    Arg.(value & opt (some int) None
         & info [ "large" ] ~doc:"Restrict sizes to >= W/$(docv)." ~docv:"K")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~doc:"Output CSV path (default stdout).")
  in
  let run count mu small large out seed =
    let open Dbp_workload in
    let spec =
      Spec.with_target_mu { Spec.default with Spec.count } ~mu
    in
    let spec =
      match (small, large) with
      | Some k, _ -> Spec.small_items spec ~k
      | None, Some k -> Spec.large_items spec ~k
      | None, None -> spec
    in
    let instance = Generator.generate ~seed spec in
    let csv = Trace.to_string instance in
    (match out with
    | Some path ->
        let oc = open_out path in
        output_string oc csv;
        close_out oc;
        Format.printf "wrote %d items to %s@." (Instance.size instance) path
    | None -> print_string csv);
    0
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a random MinTotal DBP workload trace.")
    Term.(const run $ count $ mu $ small $ large $ out $ seed_arg)

(* ---- simulate ------------------------------------------------------ *)

let simulate_cmd =
  let trace = trace_arg ~doc:"Input trace CSV (see $(b,generate))." in
  let with_ratio =
    Arg.(value & flag & info [ "ratio" ] ~doc:"Also compute OPT_total and the competitive ratio.")
  in
  let rate =
    Arg.(value & opt rat_conv Rat.one & info [ "rate" ] ~doc:"Bin cost rate C.")
  in
  let run trace policy_name with_ratio rate seed verbose =
    setup_verbose verbose;
    let instance = load_trace trace in
    let policy = resolve_policy ~mu:(Instance.mu instance) policy_name in
    ignore seed;
    let packing = Simulator.run ~policy instance in
    (match Packing.validate packing with
    | Ok () -> ()
    | Error msg ->
        Format.eprintf "internal error: invalid packing: %s@." msg;
        exit 1);
    Format.printf "%a@." Packing.pp_summary packing;
    Format.printf "cost at rate %a: %a@." Rat.pp rate Rat.pp_float
      (Packing.cost packing ~rate);
    if with_ratio then begin
      let ratio = Dbp_analysis.Ratio.measure packing in
      Format.printf "%a@." Dbp_opt.Opt_total.pp ratio.Dbp_analysis.Ratio.opt;
      Format.printf "competitive ratio: %a@." Dbp_analysis.Ratio.pp ratio
    end;
    0
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Pack a trace with an online policy and report the cost.")
    Term.(const run $ trace $ policy_arg $ with_ratio $ rate $ seed_arg $ verbose_arg)

(* ---- opt ----------------------------------------------------------- *)

let opt_cmd =
  let trace = trace_arg ~doc:"Input trace CSV." in
  let budget =
    Arg.(value & opt int 200_000
         & info [ "node-budget" ] ~doc:"Branch-and-bound node budget per segment.")
  in
  let run trace budget =
    let instance = load_trace trace in
    let opt = Dbp_opt.Opt_total.compute ~node_budget:budget instance in
    Format.printf "%a@." Instance.pp instance;
    Format.printf "bound (b.1) u(R)/W        = %a@." Rat.pp_float
      (Dbp_opt.Bounds.demand_bound instance);
    Format.printf "bound (b.2) span(R)       = %a@." Rat.pp_float
      (Dbp_opt.Bounds.span_bound instance);
    Format.printf "segment lower bound       = %a@." Rat.pp_float
      (Dbp_opt.Bounds.segment_lower_bound instance);
    Format.printf "bound (b.3) sum len(I(r)) = %a@." Rat.pp_float
      (Dbp_opt.Bounds.naive_upper_bound instance);
    Format.printf "%a@." Dbp_opt.Opt_total.pp opt;
    0
  in
  Cmd.v
    (Cmd.info "opt" ~doc:"Compute OPT_total and the paper's bounds for a trace.")
    Term.(const run $ trace $ budget)

(* ---- adversary ----------------------------------------------------- *)

let adversary_cmd =
  let which =
    Arg.(required & pos 0 (some (enum [ ("anyfit", `Anyfit); ("bestfit", `Bestfit) ])) None
         & info [] ~docv:"CONSTRUCTION" ~doc:"anyfit (Theorem 1) or bestfit (Theorem 2).")
  in
  let k = Arg.(value & opt int 8 & info [ "k" ] ~doc:"Construction parameter k.") in
  let mu = Arg.(value & opt rat_conv (Rat.of_int 4) & info [ "mu" ] ~doc:"Interval length ratio mu.") in
  let iterations =
    Arg.(value & opt (some int) None & info [ "iterations" ] ~doc:"Theorem 2 iteration count (default: paper threshold + 1).")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~doc:"Save the realised instance as CSV.")
  in
  let run which k mu iterations policy_name out =
    let save instance =
      Option.iter
        (fun path ->
          Dbp_workload.Trace.save instance ~path;
          Format.printf "instance saved to %s@." path)
        out
    in
    (match which with
    | `Anyfit ->
        let policy = resolve_policy ~mu policy_name in
        let r = Dbp_adversary.Anyfit_lb.run ~policy ~k ~mu () in
        Format.printf "%a@." Packing.pp_summary r.Dbp_adversary.Anyfit_lb.packing;
        Format.printf "algorithm cost : %a@." Rat.pp_float
          r.Dbp_adversary.Anyfit_lb.algorithm_cost;
        Format.printf "OPT_total      : %a@." Rat.pp_float
          r.Dbp_adversary.Anyfit_lb.opt_upper;
        Format.printf "ratio          : %a  (eq (1) predicts %a; bound mu = %a)@."
          Rat.pp_float r.Dbp_adversary.Anyfit_lb.ratio_lower Rat.pp_float
          (Dbp_analysis.Theorem_bounds.anyfit_construction_ratio ~k ~mu)
          Rat.pp mu;
        save r.Dbp_adversary.Anyfit_lb.instance
    | `Bestfit ->
        let iterations =
          match iterations with
          | Some n -> n
          | None -> Dbp_adversary.Bestfit_unbounded.paper_iterations ~k ~mu + 1
        in
        let r = Dbp_adversary.Bestfit_unbounded.run ~k ~mu ~iterations () in
        Format.printf "%a@." Packing.pp_summary r.Dbp_adversary.Bestfit_unbounded.packing;
        Format.printf "items          : %d@." r.Dbp_adversary.Bestfit_unbounded.items_total;
        Format.printf "BF cost        : %a@." Rat.pp_float
          r.Dbp_adversary.Bestfit_unbounded.algorithm_cost;
        Format.printf "OPT upper      : %a@." Rat.pp_float
          r.Dbp_adversary.Bestfit_unbounded.opt_upper;
        Format.printf "ratio          : %a  (forced >= k/2 = %a)@." Rat.pp_float
          r.Dbp_adversary.Bestfit_unbounded.ratio_lower Rat.pp_float
          (Rat.make k 2);
        save r.Dbp_adversary.Bestfit_unbounded.instance);
    0
  in
  Cmd.v
    (Cmd.info "adversary" ~doc:"Run the Theorem 1 / Theorem 2 adaptive adversaries.")
    Term.(const run $ which $ k $ mu $ iterations $ policy_arg $ out)

(* ---- decompose ------------------------------------------------------ *)

let decompose_cmd =
  let trace = trace_arg ~doc:"Input trace CSV." in
  let small_k =
    Arg.(value & opt (some rat_conv) None
         & info [ "k" ] ~doc:"Also check the all-small-items inequalities for this k.")
  in
  let width =
    Arg.(value & opt int 64 & info [ "width" ] ~doc:"Timeline width in columns.")
  in
  let svg =
    Arg.(value & opt (some string) None
         & info [ "svg" ] ~doc:"Also write an SVG rendering of the packing here.")
  in
  let run trace small_k width svg =
    let instance = load_trace trace in
    let packing = Simulator.run ~policy:First_fit.policy instance in
    print_string (Dbp_analysis.Timeline_render.render ~width packing);
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc (Dbp_analysis.Timeline_render.render_svg packing);
        close_out oc;
        Format.printf "svg written to %s@." path)
      svg;
    let report = Dbp_analysis.Ff_decomposition.analyse ?k:small_k packing in
    Format.printf "@.%a@." Dbp_analysis.Ff_decomposition.pp_report report;
    (match report.Dbp_analysis.Ff_decomposition.violations with
    | [] -> Format.printf "all Section 4.3 checks passed@."
    | vs ->
        List.iter (fun v -> Format.printf "VIOLATION: %s@." v) vs);
    if report.Dbp_analysis.Ff_decomposition.violations = [] then 0 else 1
  in
  Cmd.v
    (Cmd.info "decompose"
       ~doc:"Render a First Fit packing and run the Section 4.3 proof checker on it.")
    Term.(const run $ trace $ small_k $ width $ svg)

(* ---- offline --------------------------------------------------------- *)

let offline_cmd =
  let trace = trace_arg ~doc:"Input trace CSV." in
  let exact =
    Arg.(value & flag
         & info [ "exact" ] ~doc:"Also run the exact branch-and-bound (small instances).")
  in
  let run trace exact =
    let instance = load_trace trace in
    let ff = Simulator.run ~policy:First_fit.policy instance in
    Format.printf "online First Fit        : %a@." Rat.pp_float
      ff.Packing.total_cost;
    let open Dbp_offline in
    List.iter
      (fun (name, s) ->
        Format.printf "%-24s: %a (%d groups)@." name Rat.pp_float
          s.Offline_heuristic.cost
          (List.length s.Offline_heuristic.groups))
      [
        ("offline FF by arrival", Offline_heuristic.first_fit_by_arrival instance);
        ("least span increase", Offline_heuristic.least_span_increase instance);
        ("longest first", Offline_heuristic.longest_first instance);
      ];
    if exact then begin
      let r = Offline_exact.solve instance in
      if r.Offline_exact.exact then
        Format.printf "exact offline optimum   : %a (%d nodes)@." Rat.pp_float
          r.Offline_exact.upper r.Offline_exact.nodes
      else
        Format.printf "exact offline optimum   : in [%a, %a] (budget hit)@."
          Rat.pp_float r.Offline_exact.lower Rat.pp_float r.Offline_exact.upper
    end;
    0
  in
  Cmd.v
    (Cmd.info "offline"
       ~doc:"Compare offline non-migratory packings against online First Fit.")
    Term.(const run $ trace $ exact)

(* ---- stats ------------------------------------------------------------ *)

let stats_cmd =
  let trace = trace_arg ~doc:"Input trace CSV." in
  let run trace =
    let instance = load_trace trace in
    Format.printf "%a@.@." Instance.pp instance;
    let items = Array.to_list (Instance.items instance) in
    let sizes = List.map (fun (r : Item.t) -> Rat.to_float r.size) items in
    let lengths = List.map (fun r -> Rat.to_float (Item.length r)) items in
    Format.printf "sizes    : %a@." Dbp_analysis.Stats.pp_summary
      (Dbp_analysis.Stats.summarise sizes);
    Format.printf "durations: %a@.@." Dbp_analysis.Stats.pp_summary
      (Dbp_analysis.Stats.summarise lengths);
    print_string (Dbp_analysis.Chart.histogram ~title:"item sizes" sizes);
    print_string (Dbp_analysis.Chart.histogram ~title:"interval lengths" lengths);
    let actives = Instance.active_count instance in
    Format.printf "peak concurrent items: %d@."
      (Dbp_num.Step_fn.max_value actives);
    0
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Summarise a trace: size/duration distributions, peaks.")
    Term.(const run $ trace)

(* ---- diff ------------------------------------------------------------ *)

let diff_cmd =
  let trace = trace_arg ~doc:"Input trace CSV." in
  let policy_a =
    Arg.(value & opt string "first-fit" & info [ "a" ] ~doc:"First policy.")
  in
  let policy_b =
    Arg.(value & opt string "best-fit" & info [ "b" ] ~doc:"Second policy.")
  in
  let run trace name_a name_b =
    let instance = load_trace trace in
    let mu = Instance.mu instance in
    let a = Simulator.run ~policy:(resolve_policy ~mu name_a) instance in
    let b = Simulator.run ~policy:(resolve_policy ~mu name_b) instance in
    Format.printf "A = %a@.B = %a@." Packing.pp_summary a Packing.pp_summary b;
    Format.printf "%a@." Dbp_analysis.Packing_diff.pp
      (Dbp_analysis.Packing_diff.compare a b);
    0
  in
  Cmd.v
    (Cmd.info "diff" ~doc:"Compare two policies' packings of the same trace.")
    Term.(const run $ trace $ policy_a $ policy_b)

(* ---- experiments ---------------------------------------------------- *)

let experiments_cmd =
  let names =
    Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc:"E1..E19 (default: all).")
  in
  let markdown =
    Arg.(value & flag & info [ "markdown" ] ~doc:"Render tables as markdown.")
  in
  let out_dir =
    Arg.(value & opt (some string) None
         & info [ "out-dir" ] ~doc:"Also write every table as CSV (and charts as text) into this directory.")
  in
  let jobs =
    Arg.(value & opt int 1
         & info [ "j"; "jobs" ]
             ~doc:"Domains to spread E1..E19 over (0 = one per core, \
                   capped).  Output is identical whatever the value.")
  in
  let run names markdown out_dir jobs =
    let domains =
      if jobs = 0 then Dbp_experiments.Registry.default_domains ()
      else max 1 jobs
    in
    let outcomes =
      match names with
      | [] -> Dbp_experiments.Registry.run_all ~domains ()
      | names ->
          List.map
            (fun n ->
              match Dbp_experiments.Registry.run n with
              | Some o -> o
              | None ->
                  Format.eprintf "unknown experiment %s (known: %s)@." n
                    (String.concat ", " Dbp_experiments.Registry.all_names);
                  exit 2)
            names
    in
    List.iter
      (fun o ->
        if markdown then begin
          Format.printf "## %s — %s@.@." o.Dbp_experiments.Exp_common.experiment
            o.Dbp_experiments.Exp_common.artefact;
          List.iter
            (fun t -> print_string (Dbp_analysis.Table.render_markdown t))
            o.Dbp_experiments.Exp_common.tables
        end
        else print_string (Dbp_experiments.Exp_common.render_outcome o))
      outcomes;
    Option.iter
      (fun dir ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        let slug s =
          String.map
            (fun c ->
              if (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') then c
              else if c >= 'A' && c <= 'Z' then Char.lowercase_ascii c
              else '-')
            s
          |> fun s -> String.sub s 0 (min 48 (String.length s))
        in
        let write path contents =
          let oc = open_out path in
          output_string oc contents;
          close_out oc
        in
        List.iter
          (fun o ->
            List.iteri
              (fun i t ->
                let name =
                  Printf.sprintf "%s/%s-%d-%s.csv" dir
                    (String.lowercase_ascii o.Dbp_experiments.Exp_common.experiment)
                    i
                    (slug (Dbp_analysis.Table.title t))
                in
                write name (Dbp_analysis.Table.render_csv t))
              o.Dbp_experiments.Exp_common.tables;
            List.iteri
              (fun i chart ->
                write
                  (Printf.sprintf "%s/%s-chart-%d.txt" dir
                     (String.lowercase_ascii o.Dbp_experiments.Exp_common.experiment)
                     i)
                  chart)
              o.Dbp_experiments.Exp_common.charts)
          outcomes;
        Format.printf "wrote CSV/chart artefacts to %s/@." dir)
      out_dir;
    let failed =
      List.fold_left
        (fun acc o -> acc + o.Dbp_experiments.Exp_common.checks_failed)
        0 outcomes
    in
    if failed > 0 then begin
      Format.eprintf "%d experiment checks FAILED@." failed;
      1
    end
    else 0
  in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Regenerate the paper's tables and figures (E1..E19).")
    Term.(const run $ names $ markdown $ out_dir $ jobs)

(* ---- faults --------------------------------------------------------- *)

let faults_cmd =
  let trace = trace_arg ~doc:"Input trace CSV (see $(b,generate))." in
  let crash_rate =
    Arg.(value & opt float 0.0
         & info [ "crash-rate" ]
             ~doc:"Poisson server-crash rate (crashes per unit time) over \
                   the trace horizon.")
  in
  let preempt_rate =
    Arg.(value & opt float 0.0
         & info [ "preempt-rate" ]
             ~doc:"Poisson spot-preemption rate; preempted sessions restart \
                   immediately thanks to the warning.")
  in
  let warning =
    Arg.(value & opt rat_conv (Rat.make 1 4)
         & info [ "warning" ] ~doc:"Spot preemption warning time.")
  in
  let targeted =
    Arg.(value & opt (list rat_conv) []
         & info [ "kill-fullest-at" ]
             ~doc:"Comma-separated times at which to kill the fullest open \
                   server (adversarial blast-radius faults).")
  in
  let launch_failure =
    Arg.(value & opt float 0.0
         & info [ "launch-failure-prob" ]
             ~doc:"Probability that a dispatch attempt fails to launch and \
                   must back off.")
  in
  let retries =
    Arg.(value & opt int 5
         & info [ "retries" ] ~doc:"Max backoff retries per dispatch chain.")
  in
  let restart_delay =
    Arg.(value & opt rat_conv (Rat.make 1 4)
         & info [ "restart-delay" ]
             ~doc:"Delay before a crash-evicted session re-dispatches.")
  in
  let max_fleet =
    Arg.(value & opt (some int) None
         & info [ "max-fleet" ]
             ~doc:"Admission gate: defer arrivals that would open a server \
                   beyond this fleet size.")
  in
  let max_pending =
    Arg.(value & opt (some int) None
         & info [ "max-pending" ]
             ~doc:"Bound on queued retries; beyond it the lowest-priority \
                   pending request is shed.")
  in
  let repack_budget =
    Arg.(value & opt (some string) None
         & info [ "repack-budget" ] ~docv:"SPEC"
             ~doc:
               "Arm the live-migration rung: on a crash, migrate the \
                victim server's sessions into the surviving fleet while \
                this recourse budget lasts (see $(b,dbp repack) for the \
                spec grammar); the rest fall down the \
                restart/backoff/shed ladder.")
  in
  let repack_policy =
    Arg.(value & opt string "consolidate"
         & info [ "repack-policy" ]
             ~doc:"Repack policy for the migration rung (with \
                   --repack-budget): consolidate, ffd.")
  in
  let run trace policy_name crash_rate preempt_rate warning targeted
      launch_failure retries restart_delay max_fleet max_pending
      repack_budget repack_policy seed verbose =
    setup_verbose verbose;
    let open Dbp_faults in
    let invalid msg =
      Format.eprintf "dbp faults: %s@." msg;
      exit 2
    in
    let repack =
      Option.map
        (fun s ->
          match
            ( Dbp_repack.Budget.spec_of_string s,
              Dbp_repack.Repack_policy.of_string repack_policy )
          with
          | Ok spec, Ok rp -> (spec, rp)
          | Error msg, _ | _, Error msg -> invalid msg)
        repack_budget
    in
    let instance = load_trace trace in
    let policy = resolve_policy ~mu:(Instance.mu instance) policy_name in
    let horizon = Dbp_num.Interval.hi (Instance.packing_period instance) in
    let plan =
      match
        List.fold_left Fault_plan.merge Fault_plan.empty
          (List.filter
             (fun p -> not (Fault_plan.is_empty p))
             [
               Fault_plan.poisson_crashes ~seed ~rate:crash_rate ~horizon;
               Fault_plan.spot_preemptions ~seed:(Int64.add seed 1L)
                 ~rate:preempt_rate ~warning ~horizon;
               Fault_plan.targeted_fullest ~times:targeted;
             ])
      with
      | plan -> plan
      | exception Invalid_argument msg -> invalid msg
    in
    let config =
      { Injector.default_config with
        Injector.seed;
        launch_failure_prob = launch_failure;
        max_retries = retries;
        restart_delay;
        max_fleet;
        max_pending }
    in
    Format.printf "plan %s: %d faults over horizon [0, %a]@."
      plan.Fault_plan.label (Fault_plan.count plan) Rat.pp_float horizon;
    let r =
      match Injector.run ?repack ~config ~plan ~policy instance with
      | r -> r
      | exception Invalid_argument msg -> invalid msg
    in
    (match Packing.validate r.Injector.packing with
    | Ok () -> ()
    | Error msg ->
        Format.eprintf "internal error: invalid faulty packing: %s@." msg;
        exit 1);
    Format.printf "%a@." Packing.pp_summary r.Injector.packing;
    Format.printf "%a@." Resilience.pp r.Injector.resilience;
    0
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Replay a trace under server crashes, spot preemptions and launch \
          failures, and report the degradation metrics.")
    Term.(
      const run $ trace $ policy_arg $ crash_rate $ preempt_rate $ warning
      $ targeted $ launch_failure $ retries $ restart_delay $ max_fleet
      $ max_pending $ repack_budget $ repack_policy $ seed_arg $ verbose_arg)

(* ---- gaming --------------------------------------------------------- *)

let gaming_cmd =
  let hours = Arg.(value & opt float 24.0 & info [ "hours" ] ~doc:"Trace horizon in hours.") in
  let rate = Arg.(value & opt float 60.0 & info [ "rate" ] ~doc:"Mean arrivals per hour.") in
  let run hours rate seed =
    let open Dbp_cloudgaming in
    let profile =
      { Gaming_workload.default_profile with
        Gaming_workload.duration_hours = hours;
        base_rate = rate }
    in
    let requests = Gaming_workload.generate ~seed profile in
    Format.printf "generated %d requests over %.1f h (mu = %a)@."
      (List.length requests) hours Rat.pp_float (Gaming_workload.mu_of requests);
    let mu = Gaming_workload.mu_of requests in
    let policies =
      [
        First_fit.policy;
        Best_fit.policy;
        Worst_fit.policy;
        Next_fit.policy;
        Modified_first_fit.policy_mu_oblivious;
        Modified_first_fit.policy_known_mu ~mu;
      ]
    in
    List.iter
      (fun report -> Format.printf "%a@." Dispatcher.pp_report report)
      (Dispatcher.compare_policies ~policies requests);
    0
  in
  Cmd.v
    (Cmd.info "gaming" ~doc:"Run the cloud gaming dispatch comparison.")
    Term.(const run $ hours $ rate $ seed_arg)

(* ---- dvbp ----------------------------------------------------------- *)

let dvbp_cmd =
  let hours =
    Arg.(value & opt float 8.0 & info [ "hours" ] ~doc:"Trace horizon in hours.")
  in
  let rate =
    Arg.(value & opt float 25.0 & info [ "rate" ] ~doc:"Mean arrivals per hour.")
  in
  let dims =
    Arg.(value
         & opt int Dbp_cloudgaming.Game.resource_dims
         & info [ "d"; "dims" ] ~docv:"D"
             ~doc:
               "Resource dimensions per game server, 1-4: GPU, then CPU, \
                RAM, network bandwidth.  $(b,--dims 1) is the paper's \
                scalar model.")
  in
  let policy =
    Arg.(value
         & opt (some string) None
         & info [ "p"; "policy" ]
             ~doc:
               "Vector policy: first-fit, best-fit[:max|:sum], \
                worst-fit[:max|:sum], next-fit; at $(b,--dims 1) every \
                scalar registry policy works too.  Omitted: compare the \
                whole native family.")
  in
  let run hours rate dims policy seed =
    let open Dbp_cloudgaming in
    if dims < 1 || dims > Game.resource_dims then begin
      Format.eprintf "dvbp: --dims must be in 1..%d@." Game.resource_dims;
      exit 2
    end;
    let profile =
      { Gaming_workload.default_profile with
        Gaming_workload.duration_hours = hours;
        base_rate = rate }
    in
    let policies =
      match policy with
      | None -> Vec_policy.all
      | Some name -> (
          match Vec_policy.find ~seed name with
          | Some p -> [ p ]
          | None ->
              Format.eprintf "unknown vector policy %s (known: %s)@." name
                (String.concat ", " Vec_policy.names);
              exit 2)
    in
    let requests = Gaming_workload.generate ~seed profile in
    let vinstance = Gaming_workload.to_vec_instance ~dims requests in
    let lb = Dbp_opt.Bounds.vec_segment_lower_bound vinstance in
    Format.printf "dvbp: %d requests, d=%d (%s), lower bound %a@."
      (List.length requests) dims
      (String.concat "+"
         (List.filteri (fun i _ -> i < dims) Game.resource_names))
      Rat.pp_float lb;
    let code = ref 0 in
    List.iter
      (fun policy ->
        let result = Vec_simulator.run ~policy vinstance in
        (match Vec_simulator.validate result with
        | Ok () -> ()
        | Error msg ->
            Format.eprintf "dvbp: %s fails validation: %s@."
              result.Vec_simulator.r_policy_name msg;
            code := 1);
        Format.printf
          "%s: cost=%s (%a), max open=%d, any-fit violations=%d, vs LB %a@."
          result.Vec_simulator.r_policy_name
          (Rat.to_string result.Vec_simulator.r_total_cost)
          Rat.pp_float result.Vec_simulator.r_total_cost
          result.Vec_simulator.r_max_bins
          result.Vec_simulator.r_any_fit_violations Rat.pp_float
          (Rat.div result.Vec_simulator.r_total_cost lb))
      policies;
    !code
  in
  Cmd.v
    (Cmd.info "dvbp"
       ~doc:
         "Dynamic Vector Bin Packing: pack the cloud-gaming workload's \
          multi-resource server profiles.")
    Term.(const run $ hours $ rate $ dims $ policy $ seed_arg)

(* ---- bench ---------------------------------------------------------- *)

let bench_cmd =
  let quick =
    Arg.(value & flag
         & info [ "quick" ]
             ~doc:"CI smoke profile: 500/2000-item traces instead of \
                   5000/50000.")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the BENCH_simulator.json document instead of tables.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "out" ]
             ~doc:"Write the output here instead of stdout.")
  in
  let assert_floor =
    Arg.(value & opt (some file) None
         & info [ "assert-floor" ] ~docv:"FILE"
             ~doc:
               "Perf-regression gate: fail unless every fast-engine \
                policy at the largest trace size clears the \
                events-per-second floor read from $(docv) (first \
                non-comment line, see bench-floor.txt).")
  in
  let run quick json out assert_floor seed =
    let report = Dbp_experiments.Scaling_bench.run ~quick ~seed () in
    let body =
      if json then Dbp_experiments.Scaling_bench.to_json report
      else Dbp_experiments.Scaling_bench.render report
    in
    (match out with
    | Some path ->
        let oc = open_out path in
        output_string oc body;
        close_out oc;
        Format.printf "wrote %s@." path
    | None -> print_string body);
    if not (Dbp_experiments.Scaling_bench.all_identical report) then begin
      Format.eprintf
        "engine equivalence violated: fast and seed packings differ@.";
      1
    end
    else
      match assert_floor with
      | None -> 0
      | Some path ->
          let floor = read_floor path in
          let slowest =
            Dbp_experiments.Scaling_bench.min_fast_throughput report
          in
          if slowest >= floor then begin
            Format.printf
              "perf floor ok: slowest fast-engine policy at %.0f events/s \
               (floor %.0f)@."
              slowest floor;
            0
          end
          else begin
            Format.eprintf
              "perf regression: slowest fast-engine policy at %.0f \
               events/s is below the %.0f floor in %s@."
              slowest floor path;
            1
          end
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Run the simulator scaling benchmark (fast vs seed engine, per \
          policy) and emit the perf-trajectory artefact.")
    Term.(const run $ quick $ json $ out $ assert_floor $ seed_arg)

(* ---- trace ---------------------------------------------------------- *)

let trace_cmd =
  let trace = trace_arg ~doc:"Input trace CSV (see $(b,generate))." in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "out" ]
             ~doc:"Write the NDJSON event stream here (default stdout).")
  in
  let validate =
    Arg.(value & flag
         & info [ "validate" ]
             ~doc:
               "Parse every emitted line back against the dbp-trace schema \
                and assert the traced run's packing is bit-identical to an \
                untraced one.")
  in
  let run trace policy_name out validate verbose =
    setup_verbose verbose;
    let instance = load_trace trace in
    let policy = resolve_policy ~mu:(Instance.mu instance) policy_name in
    let buf = Buffer.create 65536 in
    let sink = Dbp_obs.Sink.to_buffer buf in
    let traced = Simulator.run ~sink ~policy instance in
    let body = Buffer.contents buf in
    let status = ref 0 in
    (match out with
    | Some path ->
        let oc = open_out path in
        output_string oc body;
        close_out oc;
        Format.printf "wrote %d events to %s@." (Dbp_obs.Sink.emitted sink) path
    | None -> if not validate then print_string body);
    if validate then begin
      (match Dbp_obs.Trace_event.parse_all body with
      | Ok events ->
          Format.printf "trace: %d events validate against %s@."
            (List.length events) Dbp_obs.Trace_event.schema
      | Error msg ->
          Format.eprintf "trace: schema violation: %s@." msg;
          status := 1);
      let untraced = Simulator.run ~policy instance in
      if
        Rat.equal traced.Packing.total_cost untraced.Packing.total_cost
        && traced.Packing.assignment = untraced.Packing.assignment
      then
        Format.printf "trace: traced run bit-identical to untraced (cost %s)@."
          (Rat.to_string traced.Packing.total_cost)
      else begin
        Format.eprintf "trace: traced and untraced packings DIFFER@.";
        status := 1
      end
    end;
    !status
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Replay a trace with the structured event sink on and emit the \
          NDJSON event stream (arrive/pack/depart/bin_open/bin_close).")
    Term.(const run $ trace $ policy_arg $ out $ validate $ verbose_arg)

(* ---- checkpoint ------------------------------------------------------ *)

let checkpoint_cmd =
  let trace =
    Arg.(value & opt (some file) None
         & info [ "trace" ]
             ~doc:"Input trace CSV (required for --save/--resume/--verify).")
  in
  let save =
    Arg.(value & opt (some string) None
         & info [ "save" ] ~docv:"SNAPSHOT"
             ~doc:"Freeze the run after --at events and write the snapshot here.")
  in
  let at =
    Arg.(value & opt (some int) None
         & info [ "at" ] ~docv:"N" ~doc:"Event index to checkpoint at (with --save).")
  in
  let resume_path =
    Arg.(value & opt (some file) None
         & info [ "resume" ] ~docv:"SNAPSHOT"
             ~doc:"Resume from this snapshot and finish the run.")
  in
  let inspect_path =
    Arg.(value & opt (some file) None
         & info [ "inspect" ] ~docv:"SNAPSHOT"
             ~doc:"Print a snapshot summary (no trace needed) and exit.")
  in
  let verify_path =
    Arg.(value & opt (some file) None
         & info [ "verify" ] ~docv:"SNAPSHOT"
             ~doc:
               "Prove the snapshot resumes bit-identically: packing, exact \
                cost and trace suffix all equal the uninterrupted run's.")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ]
             ~doc:"Write the resumed run's NDJSON event stream here (with \
                   --resume); its sequence numbers continue the snapshot's.")
  in
  let run trace policy_name save at resume_path inspect_path verify_path
      trace_out seed =
    let usage msg =
      Format.eprintf "dbp checkpoint: %s@." msg;
      exit 2
    in
    let load_snapshot path =
      match Dbp_checkpoint.Checkpoint.load_file path with
      | Ok snap -> snap
      | Error msg ->
          Format.eprintf "%s: corrupt snapshot: %s@." path msg;
          exit 2
    in
    let need_trace () =
      match trace with
      | Some t -> load_trace t
      | None -> usage "--trace is required for this mode"
    in
    match (save, resume_path, inspect_path, verify_path) with
    | Some path, None, None, None ->
        let at =
          match at with Some n -> n | None -> usage "--save requires --at N"
        in
        let instance = need_trace () in
        let snap =
          Dbp_checkpoint.Checkpoint.save_at ~mu:(Instance.mu instance) ~seed
            ~policy_name ~at instance
        in
        Dbp_checkpoint.Checkpoint.save_file path snap;
        Format.printf "checkpoint: froze %s after %d event(s) to %s@."
          policy_name at path;
        0
    | None, Some spath, None, None ->
        let instance = need_trace () in
        let snap = load_snapshot spath in
        let buf = Buffer.create 65536 in
        let sink =
          Option.map (fun _ -> Dbp_obs.Sink.to_buffer buf) trace_out
        in
        let resumed =
          Dbp_checkpoint.Checkpoint.resume ?sink ~mu:(Instance.mu instance)
            instance snap
        in
        (match Packing.validate resumed.Dbp_checkpoint.Checkpoint.packing with
        | Ok () -> ()
        | Error msg ->
            Format.eprintf "internal error: invalid resumed packing: %s@." msg;
            exit 1);
        Option.iter
          (fun path ->
            let oc = open_out path in
            output_string oc (Buffer.contents buf);
            close_out oc;
            Format.printf "wrote resumed event stream to %s@." path)
          trace_out;
        Format.printf "%a@." Packing.pp_summary
          resumed.Dbp_checkpoint.Checkpoint.packing;
        0
    | None, None, Some path, None ->
        print_string (Dbp_checkpoint.Checkpoint.inspect (load_snapshot path));
        0
    | None, None, None, Some path ->
        let instance = need_trace () in
        let snap = load_snapshot path in
        let v =
          Dbp_checkpoint.Checkpoint.verify ~mu:(Instance.mu instance) instance
            snap
        in
        if v.Dbp_checkpoint.Checkpoint.ok then begin
          Format.printf
            "verify: resumed run bit-identical to the uninterrupted one@.";
          0
        end
        else begin
          List.iter
            (fun m -> Format.eprintf "verify: MISMATCH: %s@." m)
            v.Dbp_checkpoint.Checkpoint.mismatches;
          1
        end
    | None, None, None, None ->
        usage "pick one of --save / --resume / --inspect / --verify"
    | _ -> usage "--save / --resume / --inspect / --verify are mutually exclusive"
  in
  Cmd.v
    (Cmd.info "checkpoint"
       ~doc:
         "Freeze a run mid-stream into a dbp-checkpoint/1 snapshot, resume \
          one, summarise one, or prove a resume bit-identical.")
    Term.(
      const run $ trace $ policy_arg $ save $ at $ resume_path $ inspect_path
      $ verify_path $ trace_out $ seed_arg)

(* ---- repack --------------------------------------------------------- *)

let repack_cmd =
  let trace = trace_arg ~doc:"Input trace CSV (see $(b,generate))." in
  let budget =
    Arg.(value & opt string "inf"
         & info [ "budget" ] ~docv:"SPEC"
             ~doc:
               "Recourse budget: $(b,8) (8 item-moves total), \
                $(b,items:total:8), $(b,volume:event:1/2), \
                $(b,items:bucket:1/4:8) (rate then burst), or \
                $(b,inf).  Invalid or negative specs exit 2.")
  in
  let repack =
    Arg.(value & opt string "consolidate"
         & info [ "repack" ] ~docv:"POLICY"
             ~doc:"Repack policy: none, consolidate, ffd.")
  in
  let sweep =
    Arg.(value & opt (some string) None
         & info [ "sweep" ] ~docv:"SPECS"
             ~doc:
               "Comma-separated budget specs; replay the trace once per \
                spec and tabulate cost against migrations spent.")
  in
  let assert_monotone =
    Arg.(value & flag
         & info [ "assert-monotone" ]
             ~doc:
               "With --sweep: exit 1 unless the exact cost is \
                non-increasing across the sweep order.")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:
               "Machine-readable output: one JSON object (or, with \
                --sweep, one per line) with exact rationals as strings.")
  in
  let verify =
    Arg.(value & flag
         & info [ "verify" ]
             ~doc:
               "Checkpoint-kill-resume proof: freeze the run at its \
                midpoint, round-trip the snapshot through the wire \
                format, resume, and exit 1 unless packing, exact cost \
                and trace suffix are bit-identical to the uninterrupted \
                run.")
  in
  let run trace policy_name budget_s repack_s sweep assert_monotone json
      verify verbose =
    setup_verbose verbose;
    let open Dbp_repack in
    let usage msg =
      Format.eprintf "dbp repack: %s@." msg;
      exit 2
    in
    let budget_of s =
      match Budget.spec_of_string s with
      | Ok spec -> spec
      | Error msg -> usage msg
    in
    let rp =
      match Repack_policy.of_string repack_s with
      | Ok rp -> rp
      | Error msg -> usage msg
    in
    let instance = load_trace trace in
    let policy = resolve_policy ~mu:(Instance.mu instance) policy_name in
    let run_one budget =
      let r = Runner.run ~budget ~repack:rp ~policy instance in
      (match Packing.validate r.Runner.packing with
      | Ok () -> ()
      | Error msg ->
          Format.eprintf "internal error: invalid repacked packing: %s@." msg;
          exit 1);
      r
    in
    let json_line spec (r : Runner.result) =
      Printf.printf
        "{\"schema\":\"dbp-repack/1\",\"policy\":%S,\"repack\":%S,\
         \"budget\":%S,\"cost\":%S,\"max_bins\":%d,\"migrations\":%d,\
         \"moved_volume\":%S,\"bins_drained\":%d,\"reclaimed\":%S,\
         \"denied\":%d}\n"
        policy_name
        (Repack_policy.name rp)
        (Budget.spec_to_string spec)
        (Rat.to_string r.Runner.packing.Packing.total_cost)
        r.Runner.packing.Packing.max_bins r.Runner.stats.Runner.migrations
        (Rat.to_string r.Runner.stats.Runner.migrated_volume)
        r.Runner.stats.Runner.bins_closed_by_repack
        (Rat.to_string r.Runner.stats.Runner.reclaimed_bin_seconds)
        r.Runner.stats.Runner.denied_triggers
    in
    let text_summary spec (r : Runner.result) =
      Format.printf "%a@." Packing.pp_summary r.Runner.packing;
      Format.printf
        "repack %s, budget %s: %d migration(s), %a volume moved, %d bin(s) \
         drained shut, %a bin-seconds reclaimed, %d denied trigger(s)@."
        (Repack_policy.name rp)
        (Budget.spec_to_string spec)
        r.Runner.stats.Runner.migrations Rat.pp_float
        r.Runner.stats.Runner.migrated_volume
        r.Runner.stats.Runner.bins_closed_by_repack Rat.pp_float
        r.Runner.stats.Runner.reclaimed_bin_seconds
        r.Runner.stats.Runner.denied_triggers
    in
    match (sweep, verify) with
    | Some _, true -> usage "--sweep and --verify are mutually exclusive"
    | Some specs, false ->
        let specs =
          String.split_on_char ',' specs
          |> List.filter (fun s -> String.trim s <> "")
          |> List.map (fun s -> budget_of (String.trim s))
        in
        if specs = [] then usage "--sweep needs at least one budget spec";
        let results = List.map (fun spec -> (spec, run_one spec)) specs in
        List.iter
          (fun (spec, r) ->
            if json then json_line spec r
            else
              Format.printf
                "budget %-16s cost %-12s migrations %-5d drained %d@."
                (Budget.spec_to_string spec)
                (Rat.to_string r.Runner.packing.Packing.total_cost)
                r.Runner.stats.Runner.migrations
                r.Runner.stats.Runner.bins_closed_by_repack)
          results;
        let costs =
          List.map
            (fun (_, r) -> r.Runner.packing.Packing.total_cost)
            results
        in
        let rec monotone = function
          | a :: (b :: _ as rest) -> Rat.(b <= a) && monotone rest
          | _ -> true
        in
        if assert_monotone && not (monotone costs) then begin
          Format.eprintf
            "repack: cost is NOT non-increasing across the sweep@.";
          1
        end
        else 0
    | None, true ->
        let spec = budget_of budget_s in
        let total = 2 * Instance.size instance in
        let at = total / 2 in
        let snap =
          Dbp_checkpoint.Checkpoint.save_repack_at
            ~mu:(Instance.mu instance) ~policy_name ~at ~budget:spec
            ~repack:rp instance
        in
        let snap =
          match
            Dbp_checkpoint.Snapshot.of_string
              (Dbp_checkpoint.Snapshot.to_string snap)
          with
          | Ok s -> s
          | Error msg ->
              Format.eprintf "repack: snapshot round trip failed: %s@." msg;
              exit 1
        in
        let v =
          Dbp_checkpoint.Checkpoint.verify ~mu:(Instance.mu instance)
            instance snap
        in
        if v.Dbp_checkpoint.Checkpoint.ok then begin
          Format.printf
            "verify: repack run killed at event %d/%d resumes \
             bit-identically@."
            at total;
          0
        end
        else begin
          List.iter
            (fun m -> Format.eprintf "verify: MISMATCH: %s@." m)
            v.Dbp_checkpoint.Checkpoint.mismatches;
          1
        end
    | None, false ->
        let spec = budget_of budget_s in
        let r = run_one spec in
        if json then json_line spec r else text_summary spec r;
        0
  in
  Cmd.v
    (Cmd.info "repack"
       ~doc:
         "Replay a trace with budget-constrained repacking: migrate \
          sessions to drain sparse servers early, metered by a recourse \
          budget.")
    Term.(
      const run $ trace $ policy_arg $ budget $ repack $ sweep
      $ assert_monotone $ json $ verify $ verbose_arg)

(* ---- metrics -------------------------------------------------------- *)

let metrics_cmd =
  let trace = trace_arg ~doc:"Input trace CSV (see $(b,generate))." in
  let profile =
    Arg.(value & flag
         & info [ "profile" ]
             ~doc:
               "Also print per-phase wall-time spans (non-deterministic; \
                off by default so the metric output stays reproducible).")
  in
  let run trace policy_name profile verbose =
    setup_verbose verbose;
    let instance = load_trace trace in
    let policy = resolve_policy ~mu:(Instance.mu instance) policy_name in
    let metrics = Dbp_obs.Metrics.create () in
    let prof = if profile then Some (Dbp_obs.Profile.create ()) else None in
    let packing = Simulator.run ~metrics ?profile:prof ~policy instance in
    Format.printf "%a@." Packing.pp_summary packing;
    List.iter
      (fun t -> print_string (Dbp_analysis.Table.render t))
      (Dbp_experiments.Exp_common.metrics_tables metrics);
    Option.iter
      (fun p ->
        print_string
          (Dbp_analysis.Table.render
             (Dbp_experiments.Exp_common.profile_table
                (Dbp_obs.Profile.spans p))))
      prof;
    0
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Replay a trace with the metrics registry on and print counters, \
          gauges, exact sums and histogram summaries.")
    Term.(const run $ trace $ policy_arg $ profile $ verbose_arg)

(* ---- check ---------------------------------------------------------- *)

let check_cmd =
  let lint_flag =
    Arg.(value & flag
         & info [ "lint" ]
             ~doc:"Run the static lint pass (R1..R7) over the source roots.")
  in
  let audit_flag =
    Arg.(value & flag
         & info [ "audit" ]
             ~doc:
               "Run the engine self-audit: seeded workloads and fault \
                storms under the runtime invariant auditor, asserting \
                audited and unaudited runs are bit-identical.")
  in
  let typed_flag =
    Arg.(value & flag
         & info [ "typed" ]
             ~doc:
               "Run the type-aware lint tier (T1..T4) over the .cmt \
                typedtrees dune left under _build (build first).  \
                Combines with --lint into one report against one \
                baseline.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON.")
  in
  let strict =
    Arg.(value & flag
         & info [ "strict" ]
             ~doc:
               "Lint: fail on any non-baselined finding (default: only \
                error-severity findings fail).")
  in
  let roots =
    Arg.(value & opt_all string []
         & info [ "root" ]
             ~doc:"Source root(s) to lint (default: lib bin examples).")
  in
  let baseline_path =
    Arg.(value & opt string "lint-baseline.txt"
         & info [ "baseline" ] ~doc:"Baseline file of accepted findings.")
  in
  let no_baseline =
    Arg.(value & flag
         & info [ "no-baseline" ] ~doc:"Ignore the baseline file entirely.")
  in
  let update_baseline =
    Arg.(value & flag
         & info [ "update-baseline" ]
             ~doc:"Rewrite the baseline to accept every current finding.")
  in
  let rules_flag =
    Arg.(value & flag
         & info [ "rules" ] ~doc:"List the lint rule set and exit.")
  in
  let run lint_flag audit_flag typed_flag json strict roots baseline_path
      no_baseline update_baseline rules_flag seed =
    let open Dbp_lint in
    if rules_flag then begin
      List.iter
        (fun (r : Rules.rule) ->
          Format.printf "%s [%s] %s@.    %s@." r.Rules.id
            (Finding.severity_to_string r.Rules.severity)
            r.Rules.title r.Rules.what)
        (Rules.all_rules @ Typed_rules.all_typed_rules);
      0
    end
    else begin
      (* No tier selected: run the syntactic lint and the audit, as
         before --typed existed (the typed tier needs build artifacts,
         so it stays opt-in; dune's @lint alias supplies them). *)
      let lint_flag, audit_flag =
        if lint_flag || audit_flag || typed_flag then (lint_flag, audit_flag)
        else (true, true)
      in
      let lint_status =
        if not (lint_flag || typed_flag) then 0
        else begin
          let roots = if roots = [] then [ "lib"; "bin"; "examples" ] else roots in
          let baseline =
            if no_baseline then [] else Lint.load_baseline baseline_path
          in
          (* Both tiers feed ONE report against one baseline, so
             neither tier sees the other's accepted entries as stale. *)
          let collect_all () =
            let syntactic =
              if lint_flag then Lint.collect ~roots () else ([], 0)
            in
            let typed =
              if typed_flag then Typed_lint.collect ~roots () else ([], 0)
            in
            (fst syntactic @ fst typed, snd syntactic + snd typed)
          in
          let findings, files_scanned =
            match collect_all () with
            | r -> r
            | exception Failure msg ->
                Format.eprintf "dbp check: %s@." msg;
                exit 2
          in
          if update_baseline then begin
            Lint.save_baseline ~path:baseline_path findings;
            Format.printf "baseline updated: %s (%d finding(s) accepted)@."
              baseline_path (List.length findings);
            0
          end
          else begin
            let report = Lint.report_of ~baseline ~files_scanned findings in
            print_string
              (if json then Lint.render_json report
               else Lint.render_human report);
            Lint.exit_code ~strict report
          end
        end
      in
      let audit_status =
        if not audit_flag then 0
        else begin
          let open Dbp_core in
          let runs = ref 0 in
          let mismatches = ref 0 in
          let violation = ref None in
          let packing_identical (a : Packing.t) (b : Packing.t) =
            Dbp_num.Rat.equal a.Packing.total_cost b.Packing.total_cost
            && a.Packing.assignment = b.Packing.assignment
            && a.Packing.max_bins = b.Packing.max_bins
            && a.Packing.any_fit_violations = b.Packing.any_fit_violations
          in
          (try
             (* Fault-free workloads: every policy, two seeds. *)
             List.iter
               (fun s ->
                 let instance =
                   Dbp_workload.Generator.generate ~seed:s
                     { Dbp_workload.Spec.default with Dbp_workload.Spec.count = 300 }
                 in
                 List.iter
                   (fun policy ->
                     let audited = Simulator.run ~audit:true ~policy instance in
                     let plain = Simulator.run ~audit:false ~policy instance in
                     incr runs;
                     if not (packing_identical audited plain) then
                       incr mismatches)
                   (Algorithms.all ()))
               [ seed; Int64.add seed 19L ];
             (* A crash storm through the injector, audited. *)
             let instance =
               Dbp_workload.Generator.generate ~seed
                 { Dbp_workload.Spec.default with Dbp_workload.Spec.count = 200 }
             in
             let horizon =
               Dbp_num.Interval.hi (Instance.packing_period instance)
             in
             let plan =
               Dbp_faults.Fault_plan.poisson_crashes ~seed ~rate:1.5 ~horizon
             in
             List.iter
               (fun policy ->
                 let r =
                   Dbp_faults.Injector.run ~audit:true ~plan ~policy instance
                 in
                 incr runs;
                 match Packing.validate r.Dbp_faults.Injector.packing with
                 | Ok () -> ()
                 | Error _ -> incr mismatches)
               (Algorithms.all ())
           with Audit.Audit_violation v -> violation := Some v);
          let ok = !violation = None && !mismatches = 0 in
          if json then
            Format.printf
              "{\"audit\": {\"runs\": %d, \"mismatches\": %d, \
               \"violation\": %s}}@."
              !runs !mismatches
              (match !violation with
              | None -> "null"
              | Some v ->
                  Printf.sprintf "\"%s\""
                    (Dbp_lint.Finding.json_escape (Audit.violation_to_string v)))
          else begin
            Format.printf
              "audit: %d run(s) under the invariant auditor, %d \
               audited-vs-plain mismatch(es)@."
              !runs !mismatches;
            match !violation with
            | None -> Format.printf "audit: no invariant violations@."
            | Some v -> Format.printf "audit: %s@." (Audit.violation_to_string v)
          end;
          if ok then 0 else 1
        end
      in
      max lint_status audit_status
    end
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Correctness tooling: static lint pass (R1..R7) over the sources, \
          type-aware lint tier (T1..T4) over dune's .cmt typedtrees, \
          and/or the engine's runtime invariant self-audit.")
    Term.(
      const run $ lint_flag $ audit_flag $ typed_flag $ json $ strict $ roots
      $ baseline_path $ no_baseline $ update_baseline $ rules_flag $ seed_arg)

(* ---- serve ---------------------------------------------------------- *)

let serve_cmd =
  let shards =
    Arg.(value & opt int 1
         & info [ "shards" ]
             ~doc:"Shard the fleet across $(docv) domains (>= 1)." ~docv:"N")
  in
  let capacity =
    Arg.(value & opt rat_conv Rat.one
         & info [ "capacity" ] ~doc:"Bin capacity W (a rational).")
  in
  let route =
    Arg.(value & opt string "size-class"
         & info [ "route" ]
             ~doc:
               "Shard router: $(b,size-class) (MFF's large/small pool split; \
                large items own shard 0) or $(b,hash).")
  in
  let split_k =
    Arg.(value & opt rat_conv Rat.two
         & info [ "split-k" ]
             ~doc:
               "Size-class router divisor k (> 1): items of size >= \
                capacity/k are large.")
  in
  let grid_den =
    Arg.(value & opt (some int) None
         & info [ "grid-den" ] ~docv:"D"
             ~doc:
               "Run the shard engines on the fixed-point fast track with \
                size/time grid 1/$(docv) (default: exact rationals).")
  in
  let budget =
    Arg.(value & opt string "unlimited"
         & info [ "migration-budget" ] ~docv:"SPEC"
             ~doc:
               "Recourse budget for shard-loss migration (same specs as \
                $(b,dbp repack --budget)): $(b,8) (8 item-moves total), \
                $(b,items:total:8), $(b,volume:event:1/2), \
                $(b,items:bucket:1/4:8) (rate then burst), or \
                $(b,unlimited).")
  in
  let stdio =
    Arg.(value & flag
         & info [ "stdio" ]
             ~doc:"Serve a single NDJSON stream on stdin/stdout (default).")
  in
  let socket =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Daemon mode: listen on a Unix domain socket at $(docv).")
  in
  let tcp =
    Arg.(value & opt (some int) None
         & info [ "tcp" ] ~docv:"PORT"
             ~doc:"Daemon mode: listen on 127.0.0.1:$(docv).")
  in
  let replay =
    Arg.(value & opt (some file) None
         & info [ "replay" ] ~docv:"FILE"
             ~doc:
               "Client mode: stream the trace CSV $(docv) through an \
                in-process daemon (or a running one, with $(b,--connect)) \
                and print its summary line.")
  in
  let connect =
    Arg.(value & opt (some string) None
         & info [ "connect" ] ~docv:"PATH"
             ~doc:
               "With $(b,--replay): connect to a running daemon's Unix \
                socket instead of spawning one in-process.")
  in
  let echo =
    Arg.(value & flag
         & info [ "echo-placements" ]
             ~doc:"In replay mode, print every placement line.")
  in
  let bench =
    Arg.(value & flag
         & info [ "bench" ]
             ~doc:
               "Soak benchmark: drive $(b,--sessions) concurrent sessions \
                through a socketpair against a live daemon and emit the \
                dbp-bench-serve/1 JSON document.")
  in
  let sessions =
    Arg.(value & opt int 1_000_000
         & info [ "sessions" ] ~docv:"N"
             ~doc:
               "Soak sessions; each is one arrival and one departure, and \
                all $(docv) are resident at peak.")
  in
  let assert_floor =
    Arg.(value & opt (some file) None
         & info [ "assert-floor" ] ~docv:"FILE"
             ~doc:
               "With $(b,--bench): fail (exit 1) unless the soak sustains \
                the events-per-second floor read from $(docv) (first \
                non-comment line, see serve-floor.txt).")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "out" ]
             ~doc:"With $(b,--bench): write the JSON here instead of stdout.")
  in
  let checkpoint =
    Arg.(value & opt (some string) None
         & info [ "checkpoint" ] ~docv:"PREFIX"
             ~doc:
               "On shutdown (SIGTERM or end of stream), write one \
                dbp-checkpoint/1 snapshot per shard to $(docv).shard<k>.")
  in
  let run shards policy_name capacity seed route_name split_k grid_den
      budget_spec stdio socket tcp replay connect echo bench sessions
      assert_floor out checkpoint =
    let module S = Dbp_serve.Serve in
    let usage fmt =
      Format.kasprintf
        (fun m ->
          Format.eprintf "dbp serve: %s@." m;
          exit 2)
        fmt
    in
    if shards < 1 then usage "--shards must be >= 1, got %d" shards;
    let route =
      match Dbp_serve.Router.policy_of_string route_name with
      | Ok r -> r
      | Error msg -> usage "%s" msg
    in
    let budget =
      match Dbp_repack.Budget.spec_of_string budget_spec with
      | Ok spec -> spec
      | Error msg -> usage "--migration-budget: %s" msg
    in
    let cfg =
      {
        S.shards;
        policy = resolve_policy policy_name;
        policy_name;
        capacity;
        seed;
        route;
        split_k;
        grid_den;
        budget;
      }
    in
    let fail msg =
      Format.eprintf "dbp serve: %s@." msg;
      exit 2
    in
    let modes =
      (if stdio then 1 else 0)
      + (if Option.is_some socket then 1 else 0)
      + (if Option.is_some tcp then 1 else 0)
      + (if Option.is_some replay then 1 else 0)
      + (if bench then 1 else 0)
    in
    if modes > 1 then
      usage "choose one of --stdio, --socket, --tcp, --replay, --bench";
    if Option.is_some connect && Option.is_none replay then
      usage "--connect requires --replay";
    let echo_fn = if echo then Some print_endline else None in
    let serve_listener lfd cleanup =
      let should_stop = S.install_sigterm () in
      let result =
        Fun.protect ~finally:cleanup (fun () ->
            S.run_listener cfg ?checkpoint ~should_stop lfd)
      in
      match result with
      | Ok su ->
          print_endline (S.summary_line cfg su);
          0
      | Error msg -> fail msg
    in
    match (socket, tcp, replay, bench) with
    | Some path, None, None, false ->
        (try if Sys.file_exists path then Sys.remove path
         with Sys_error _ -> ());
        let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind lfd (Unix.ADDR_UNIX path);
        Unix.listen lfd 16;
        serve_listener lfd (fun () ->
            (try Unix.close lfd with Unix.Unix_error _ -> ());
            try Sys.remove path with Sys_error _ -> ())
    | None, Some port, None, false ->
        if port < 0 || port > 0xffff then usage "--tcp port out of range";
        let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt lfd Unix.SO_REUSEADDR true;
        Unix.bind lfd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        Unix.listen lfd 16;
        serve_listener lfd (fun () ->
            try Unix.close lfd with Unix.Unix_error _ -> ())
    | None, None, Some trace, false -> (
        let instance = load_trace trace in
        let result =
          match connect with
          | None -> S.replay cfg ?echo:echo_fn instance
          | Some path ->
              let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
              Fun.protect
                ~finally:(fun () ->
                  try Unix.close fd with Unix.Unix_error _ -> ())
                (fun () ->
                  Unix.connect fd (Unix.ADDR_UNIX path);
                  S.replay_client ?echo:echo_fn fd instance)
        in
        match result with
        | Ok summary ->
            print_endline summary;
            0
        | Error msg -> fail msg)
    | None, None, None, true -> (
        if sessions < 1 then usage "--sessions must be >= 1";
        match S.bench cfg ~sessions with
        | Error msg -> fail msg
        | Ok r -> (
            let body = S.bench_json cfg r in
            (match out with
            | Some path ->
                let oc = open_out path in
                output_string oc body;
                output_char oc '\n';
                close_out oc;
                Format.printf "wrote %s@." path
            | None -> print_endline body);
            match assert_floor with
            | None -> 0
            | Some path ->
                let floor = read_floor path in
                if r.S.br_events_per_s >= floor then begin
                  Format.printf "serve floor ok: %.0f events/s (floor %.0f)@."
                    r.S.br_events_per_s floor;
                  0
                end
                else begin
                  Format.eprintf
                    "serve perf regression: %.0f events/s is below the %.0f \
                     floor in %s@."
                    r.S.br_events_per_s floor path;
                  1
                end))
    | None, None, None, false -> (
        let should_stop = S.install_sigterm () in
        match
          S.run_stream cfg ?checkpoint ~should_stop ~input:Unix.stdin
            ~output:Unix.stdout ()
        with
        | Ok _ -> 0 (* the summary already went to the stream *)
        | Error msg -> fail msg)
    | _ -> usage "choose one of --stdio, --socket, --tcp, --replay, --bench"
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-running sharded allocator daemon: stream dbp-trace/2 \
          arrive/depart events over stdio or a socket, answer each arrival \
          with a placement, shard bins across domains, and degrade \
          gracefully on shard loss via budget-aware migration.")
    Term.(
      const run $ shards $ policy_arg $ capacity $ seed_arg $ route $ split_k
      $ grid_den $ budget $ stdio $ socket $ tcp $ replay $ connect $ echo
      $ bench $ sessions $ assert_floor $ out $ checkpoint)

(* ---- main ----------------------------------------------------------- *)

let () =
  let doc = "MinTotal Dynamic Bin Packing (SPAA 2014) reproduction toolkit" in
  let info = Cmd.info "dbp" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [
        generate_cmd;
        simulate_cmd;
        opt_cmd;
        adversary_cmd;
        decompose_cmd;
        offline_cmd;
        diff_cmd;
        stats_cmd;
        experiments_cmd;
        faults_cmd;
        gaming_cmd;
        dvbp_cmd;
        bench_cmd;
        trace_cmd;
        checkpoint_cmd;
        repack_cmd;
        metrics_cmd;
        check_cmd;
        serve_cmd;
      ]
  in
  (* Validation failures are exit code 2 everywhere, never an uncaught
     exception: a scripted caller can rely on 0 = ok, 1 = semantic
     mismatch (failed checks), 2 = invalid input/usage. *)
  let code =
    try Cmd.eval' ~catch:false group with
    | Dbp_workload.Spec.Invalid_spec { field; reason } ->
        Format.eprintf "dbp: invalid spec: %s: %s@." field reason;
        2
    | Dbp_checkpoint.Checkpoint.Error msg ->
        Format.eprintf "dbp: %s@." msg;
        2
    | Simulator.Invalid_step msg | Simulator.Invalid_decision msg ->
        Format.eprintf "dbp: %s@." msg;
        2
    | Invalid_argument msg | Failure msg ->
        Format.eprintf "dbp: %s@." msg;
        2
    | Unix.Unix_error (err, fn, arg) ->
        Format.eprintf "dbp: %s: %s %s@." (Unix.error_message err) fn arg;
        2
  in
  exit code
