(* Benchmark harness.

   Part 1 regenerates every paper artefact (the E1-E19 experiment
   tables and figures - see DESIGN.md's per-experiment index) and fails
   the process if any experiment check fails.  The experiments fan out
   over OCaml 5 domains; the rendered output is order-identical to a
   sequential run.

   Part 2 runs the simulator scaling benchmark (fast engine vs the
   retained seed engine, per policy) and writes the perf-trajectory
   artefact BENCH_simulator.json.

   Part 3 runs bechamel micro-benchmarks over the building blocks: the
   simulator with each policy, the exact OPT machinery, the Section 4.3
   decomposition and the adversary constructions. *)

open Bechamel

(* ---- part 1: regenerate the paper's tables and figures ------------- *)

let regenerate_experiments () =
  print_endline "################################################################";
  print_endline "## Part 1: paper artefact regeneration (experiments E1-E19)  ##";
  print_endline "################################################################";
  let domains = Dbp_experiments.Registry.default_domains () in
  Printf.printf "(running on %d domains)\n" domains;
  let outcomes = Dbp_experiments.Registry.run_all ~domains () in
  List.iter
    (fun o -> print_string (Dbp_experiments.Exp_common.render_outcome o))
    outcomes;
  let failed =
    List.fold_left
      (fun acc o -> acc + o.Dbp_experiments.Exp_common.checks_failed)
      0 outcomes
  in
  if failed > 0 then begin
    Printf.eprintf "%d experiment checks FAILED\n" failed;
    exit 1
  end;
  print_endline "All experiment checks passed."

(* ---- part 2: simulator scaling + perf trajectory -------------------- *)

let scaling_bench () =
  print_endline "";
  print_endline "################################################################";
  print_endline "## Part 2: simulator scaling (fast vs seed engine)           ##";
  print_endline "################################################################";
  let report = Dbp_experiments.Scaling_bench.run ~quick:false () in
  print_string (Dbp_experiments.Scaling_bench.render report);
  let path = "BENCH_simulator.json" in
  let oc = open_out path in
  output_string oc (Dbp_experiments.Scaling_bench.to_json report);
  close_out oc;
  Printf.printf "perf trajectory written to %s\n" path;
  if not (Dbp_experiments.Scaling_bench.all_identical report) then begin
    prerr_endline "engine equivalence violated: fast and seed packings differ";
    exit 1
  end

(* ---- part 3: micro-benchmarks --------------------------------------- *)

open Dbp_num
open Dbp_core

let workload n seed =
  Dbp_workload.Generator.generate ~seed
    { Dbp_workload.Spec.default with Dbp_workload.Spec.count = n }

let bench_policies =
  let instance = workload 500 101L in
  let tests =
    List.map
      (fun policy ->
        Test.make ~name:policy.Policy.name
          (Staged.stage (fun () -> Simulator.run ~policy instance)))
      (Algorithms.all ())
  in
  let seed_engine =
    Test.make ~name:"first_fit-seed-engine"
      (Staged.stage (fun () ->
           Simulator_naive.run ~policy:First_fit.policy instance))
  in
  Test.make_grouped ~name:"simulate-500-items" (seed_engine :: tests)

let bench_opt =
  let small = workload 60 102L in
  let medium = workload 150 103L in
  Test.make_grouped ~name:"opt-total"
    [
      Test.make ~name:"60-items"
        (Staged.stage (fun () -> Dbp_opt.Opt_total.compute small));
      Test.make ~name:"150-items"
        (Staged.stage (fun () -> Dbp_opt.Opt_total.compute medium));
      Test.make ~name:"segment-lower-bound-150"
        (Staged.stage (fun () -> Dbp_opt.Bounds.segment_lower_bound medium));
    ]

let bench_decomposition =
  let instance =
    Dbp_workload.Generator.generate ~seed:104L
      (Dbp_workload.Spec.small_items
         { Dbp_workload.Spec.default with Dbp_workload.Spec.count = 200 }
         ~k:4)
  in
  let packing = Simulator.run ~policy:First_fit.policy instance in
  Test.make_grouped ~name:"analysis"
    [
      Test.make ~name:"ff-decomposition-200-items"
        (Staged.stage (fun () ->
             Dbp_analysis.Ff_decomposition.analyse ~k:(Rat.of_int 4) packing));
      Test.make ~name:"packing-validate"
        (Staged.stage (fun () -> Packing.validate packing));
    ]

let bench_adversaries =
  Test.make_grouped ~name:"adversaries"
    [
      Test.make ~name:"anyfit-k16"
        (Staged.stage (fun () ->
             Dbp_adversary.Anyfit_lb.run ~k:16 ~mu:(Rat.of_int 10) ()));
      Test.make ~name:"bestfit-k4"
        (Staged.stage (fun () ->
             Dbp_adversary.Bestfit_unbounded.run ~k:4 ~mu:Rat.two ~iterations:3
               ()));
    ]

let bench_faults =
  (* Crash-heavy scenario: a Poisson storm of one crash per unit time
     over the whole horizon, plus launch failures on half the dispatch
     attempts — the injector's worst case (every fault re-dispatches
     its evictions through the backoff machinery). *)
  let instance = workload 300 108L in
  let horizon = Interval.hi (Instance.packing_period instance) in
  let plan = Dbp_faults.Fault_plan.poisson_crashes ~seed:108L ~rate:1.0 ~horizon in
  let config =
    { Dbp_faults.Injector.default_config with
      Dbp_faults.Injector.launch_failure_prob = 0.5 }
  in
  let tests =
    List.map
      (fun policy ->
        Test.make ~name:policy.Policy.name
          (Staged.stage (fun () ->
               Dbp_faults.Injector.run ~config ~plan ~policy instance)))
      [
        First_fit.policy;
        Best_fit.policy;
        Worst_fit.policy;
        Modified_first_fit.policy_mu_oblivious;
      ]
  in
  Test.make_grouped ~name:"faults-crash-storm-300-items" tests

let bench_rationals =
  let xs = List.init 1000 (fun i -> Rat.make (i + 1) 10_000) in
  let deltas =
    List.concat
      (List.init 500 (fun i -> [ (Rat.of_int i, 1); (Rat.of_int (i + 3), -1) ]))
  in
  Test.make_grouped ~name:"num"
    [
      Test.make ~name:"rat-sum-1000" (Staged.stage (fun () -> Rat.sum xs));
      Test.make ~name:"step-fn-of-deltas-1000"
        (Staged.stage (fun () -> Step_fn.of_deltas deltas));
    ]


let bench_offline =
  let small = workload 12 105L in
  let medium = workload 150 106L in
  Test.make_grouped ~name:"offline"
    [
      Test.make ~name:"exact-12-items"
        (Staged.stage (fun () -> Dbp_offline.Offline_exact.solve small));
      Test.make ~name:"heuristics-150-items"
        (Staged.stage (fun () -> Dbp_offline.Offline_heuristic.best medium));
      Test.make ~name:"repack-baseline-150-items"
        (Staged.stage (fun () -> Dbp_opt.Repack_baseline.compute medium));
    ]

let bench_extensions =
  let instance = workload 200 107L in
  let ci = Dbp_constrained.Geo.constrain ~latency_budget:0.7 instance in
  let predictor =
    Dbp_clairvoyant.Predictor.build Dbp_clairvoyant.Predictor.Exact instance
  in
  Test.make_grouped ~name:"extensions"
    [
      Test.make ~name:"constrained-ff-200"
        (Staged.stage (fun () ->
             Dbp_constrained.Constrained_policy.run
               ~policy:Dbp_constrained.Constrained_policy.first_fit ci));
      Test.make ~name:"least-extension-fit-200"
        (Staged.stage (fun () ->
             Simulator.run
               ~policy:(Dbp_clairvoyant.Duration_fit.least_extension_fit predictor)
               instance));
    ]

let all_micro =
  Test.make_grouped ~name:"dbp"
    [
      bench_policies;
      bench_opt;
      bench_decomposition;
      bench_adversaries;
      bench_offline;
      bench_extensions;
      bench_faults;
      bench_rationals;
    ]

let run_micro () =
  print_endline "";
  print_endline "################################################################";
  print_endline "## Part 3: micro-benchmarks (bechamel, monotonic clock)      ##";
  print_endline "################################################################";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances all_micro in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold (fun name ols_result acc -> (name, ols_result) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Printf.printf "%-45s %15s\n" "benchmark" "ns/run";
  Printf.printf "%s\n" (String.make 61 '-');
  List.iter
    (fun (name, ols_result) ->
      let estimate =
        match Analyze.OLS.estimates ols_result with
        | Some (e :: _) -> Printf.sprintf "%15.1f" e
        | _ -> Printf.sprintf "%15s" "n/a"
      in
      Printf.printf "%-45s %s\n" name estimate)
    rows

let () =
  regenerate_experiments ();
  scaling_bench ();
  run_micro ()
