open Dbp_num
open Dbp_core
open Dbp_constrained
open Test_util

let mk ?(size = r 1 2) a d =
  Item.make ~id:0 ~size ~arrival:(ri a) ~departure:(ri d)

let inst items = Instance.create ~capacity:Rat.one items
let regions = [ "east"; "west" ]

let test_validation () =
  let instance = inst [ mk 0 2; mk 1 3 ] in
  Alcotest.(check bool) "empty regions" true
    (try
       ignore (Constrained_instance.create ~regions:[] ~allowed:[] instance);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "duplicate regions" true
    (try
       ignore
         (Constrained_instance.create ~regions:[ "a"; "a" ]
            ~allowed:[ [ "a" ]; [ "a" ] ] instance);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "length mismatch" true
    (try
       ignore
         (Constrained_instance.create ~regions ~allowed:[ [ "east" ] ] instance);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "empty allowed" true
    (try
       ignore
         (Constrained_instance.create ~regions ~allowed:[ [ "east" ]; [] ]
            instance);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "unknown region" true
    (try
       ignore
         (Constrained_instance.create ~regions
            ~allowed:[ [ "east" ]; [ "mars" ] ]
            instance);
       false
     with Invalid_argument _ -> true)

let test_unconstrained () =
  let ci = Constrained_instance.unconstrained ~regions (inst [ mk 0 2 ]) in
  Alcotest.(check (list string)) "all regions allowed" regions
    (Constrained_instance.allowed_of ci 0)

let test_placement_respects_constraints () =
  (* Two items that would share a bin, but in different regions. *)
  let instance = inst [ mk ~size:(r 1 4) 0 4; mk ~size:(r 1 4) 1 3 ] in
  let ci =
    Constrained_instance.create ~regions
      ~allowed:[ [ "east" ]; [ "west" ] ]
      instance
  in
  let packing = Constrained_policy.run ~policy:Constrained_policy.first_fit ci in
  assert_valid_packing packing;
  Alcotest.(check int) "two bins (regions disjoint)" 2
    (Packing.bins_used packing);
  Alcotest.(check bool) "regions validated" true
    (Constrained_policy.validate_regions ci packing = Ok ());
  (* Unconstrained, they share. *)
  let free = Constrained_instance.unconstrained ~regions instance in
  let packing' =
    Constrained_policy.run ~policy:Constrained_policy.first_fit free
  in
  Alcotest.(check int) "one bin when free" 1 (Packing.bins_used packing')

let test_validate_regions_catches_violation () =
  let instance = inst [ mk 0 2 ] in
  let ci =
    Constrained_instance.create ~regions ~allowed:[ [ "east" ] ] instance
  in
  (* Pack with a policy that ignores constraints and tags "west". *)
  let rogue =
    Policy.stateless ~name:"rogue" (fun ~capacity:_ ~now:_ ~bins:_ ~size:_ ->
        Policy.New_bin "west")
  in
  let packing = Simulator.run ~policy:rogue instance in
  Alcotest.(check bool) "violation detected" true
    (Constrained_policy.validate_regions ci packing <> Ok ())

let test_region_rules () =
  (* Four big items allowed everywhere: First_allowed stacks all bins
     in region "east"; Fewest_open_bins alternates. *)
  let instance =
    inst (List.init 4 (fun _ -> mk ~size:(r 3 5) 0 4))
  in
  let ci = Constrained_instance.unconstrained ~regions instance in
  let stacked = Constrained_policy.run ~policy:Constrained_policy.first_fit ci in
  let east_only =
    Array.for_all
      (fun (b : Packing.bin_record) -> b.tag = "east")
      stacked.Packing.bins
  in
  Alcotest.(check bool) "first-allowed stacks east" true east_only;
  let balanced =
    Constrained_policy.run
      ~policy:
        (Constrained_policy.first_fit ~rule:Constrained_policy.Fewest_open_bins)
      ci
  in
  let tags =
    Array.to_list balanced.Packing.bins
    |> List.map (fun (b : Packing.bin_record) -> b.tag)
    |> List.sort_uniq compare
  in
  Alcotest.(check (list string)) "balanced uses both regions"
    [ "east"; "west" ] tags

let test_restrict_and_lower_bound () =
  let instance = inst [ mk 0 2; mk 1 3; mk 4 6 ] in
  let ci =
    Constrained_instance.create ~regions
      ~allowed:[ [ "east" ]; [ "east"; "west" ]; [ "west" ] ]
      instance
  in
  (match Constrained_instance.restrict_to_region ci "east" with
  | Some sub -> Alcotest.(check int) "east-only items" 1 (Instance.size sub)
  | None -> Alcotest.fail "expected east-only items");
  (* single-region spans: east-only [0,2] = 2, west-only [4,6] = 2 -> 4;
     dominates span(R) = 5? span = [0,3] u [4,6] = 5 -> LB = 5. *)
  check_rat "lower bound" (ri 5) (Constrained_instance.lower_bound ci);
  (* tighten: all single-region -> sum of spans = 2 + (1..3 west? ...) *)
  let ci2 =
    Constrained_instance.create ~regions
      ~allowed:[ [ "east" ]; [ "west" ]; [ "west" ] ]
      instance
  in
  (* east: span [0,2] = 2; west: [1,3] u [4,6] = 4; total 6 > span 5 *)
  check_rat "lower bound tightened" (ri 6)
    (Constrained_instance.lower_bound ci2)

let test_geo () =
  let instance = inst (List.init 30 (fun i -> mk i (i + 2))) in
  let tight = Geo.constrain ~seed:3L ~latency_budget:0.1 instance in
  Alcotest.(check bool) "tight budget -> singletons" true
    (Geo.mean_allowed tight <= 1.2);
  let free = Geo.constrain ~seed:3L ~latency_budget:2.0 instance in
  Alcotest.(check bool) "huge budget -> all four" true
    (Geo.mean_allowed free = 4.0);
  Alcotest.(check bool) "negative budget rejected" true
    (try
       ignore (Geo.constrain ~latency_budget:(-1.0) instance);
       false
     with Invalid_argument _ -> true)

let test_classic_dbp () =
  let instance =
    Dbp_workload.Patterns.fragmentation ~k:4 ~mu:(ri 6)
  in
  let packing = Simulator.run ~policy:First_fit.policy instance in
  let opt = Dbp_opt.Opt_total.compute instance in
  let classic = Dbp_analysis.Classic_dbp.measure packing ~opt in
  Alcotest.(check int) "FF peak 4" 4 classic.Dbp_analysis.Classic_dbp.algorithm_max_bins;
  Alcotest.(check int) "OPT peak 4" 4 classic.Dbp_analysis.Classic_dbp.opt_max_bins;
  check_rat "classic ratio 1" Rat.one classic.Dbp_analysis.Classic_dbp.ratio

let prop_tests =
  [
    qcheck ~count:100 "constrained FF always respects constraints"
      (instance_gen ~max_items:25 ()) (fun instance ->
        let ci = Geo.constrain ~seed:9L ~latency_budget:0.7 instance in
        let packing =
          Constrained_policy.run ~policy:Constrained_policy.first_fit ci
        in
        Constrained_policy.validate_regions ci packing = Ok ()
        && Packing.validate packing = Ok ());
    qcheck ~count:100 "constrained cost >= constrained lower bound"
      (instance_gen ~max_items:20 ()) (fun instance ->
        let ci = Geo.constrain ~seed:10L ~latency_budget:0.5 instance in
        let packing =
          Constrained_policy.run ~policy:Constrained_policy.best_fit ci
        in
        Rat.(packing.Packing.total_cost >= Constrained_instance.lower_bound ci));
    qcheck ~count:80 "unconstrained wrapper = plain FF cost"
      (instance_gen ~max_items:20 ()) (fun instance ->
        let ci = Constrained_instance.unconstrained ~regions:[ "r" ] instance in
        let cff =
          Constrained_policy.run ~policy:Constrained_policy.first_fit ci
        in
        let ff = Simulator.run ~policy:First_fit.policy instance in
        Rat.equal cff.Packing.total_cost ff.Packing.total_cost
        && cff.Packing.assignment = ff.Packing.assignment);
  ]

let suite =
  [
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "unconstrained" `Quick test_unconstrained;
    Alcotest.test_case "placements respect constraints" `Quick
      test_placement_respects_constraints;
    Alcotest.test_case "rogue placements detected" `Quick
      test_validate_regions_catches_violation;
    Alcotest.test_case "region rules" `Quick test_region_rules;
    Alcotest.test_case "restrict/lower bound" `Quick
      test_restrict_and_lower_bound;
    Alcotest.test_case "geo constraints" `Quick test_geo;
    Alcotest.test_case "classic objective" `Quick test_classic_dbp;
  ]
  @ prop_tests
