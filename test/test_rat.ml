open Dbp_num
open Test_util

let test_normalisation () =
  check_rat "6/4 = 3/2" (r 3 2) (r 6 4);
  check_rat "-6/4 = -3/2" (r (-3) 2) (r 6 (-4));
  check_rat "0/7 = 0" Rat.zero (r 0 7);
  Alcotest.(check int) "num of 3/2" 3 (Rat.num (r 6 4));
  Alcotest.(check int) "den of 3/2" 2 (Rat.den (r 6 4));
  Alcotest.(check int) "den positive" 2 (Rat.den (r 6 (-4)));
  Alcotest.check_raises "zero denominator" Division_by_zero (fun () ->
      ignore (Rat.make 1 0))

let test_arithmetic () =
  check_rat "1/2 + 1/3" (r 5 6) (Rat.add (r 1 2) (r 1 3));
  check_rat "1/2 - 1/3" (r 1 6) (Rat.sub (r 1 2) (r 1 3));
  check_rat "2/3 * 3/4" (r 1 2) (Rat.mul (r 2 3) (r 3 4));
  check_rat "1/2 / 1/4" (ri 2) (Rat.div (r 1 2) (r 1 4));
  check_rat "neg" (r (-1) 2) (Rat.neg (r 1 2));
  check_rat "abs" (r 1 2) (Rat.abs (r (-1) 2));
  check_rat "inv" (r 2 3) (Rat.inv (r 3 2));
  check_rat "inv negative" (r (-2) 3) (Rat.inv (r (-3) 2));
  check_rat "mul_int" (r 3 2) (Rat.mul_int (r 1 2) 3);
  check_rat "div_int" (r 1 6) (Rat.div_int (r 1 2) 3);
  check_rat "sum" (ri 2) (Rat.sum [ r 1 2; r 1 2; Rat.one ]);
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Rat.div Rat.one Rat.zero))

let test_comparisons () =
  Alcotest.(check bool) "1/2 < 2/3" true Rat.(r 1 2 < r 2 3);
  Alcotest.(check bool) "-1/2 < 1/3" true Rat.(r (-1) 2 < r 1 3);
  Alcotest.(check bool) "equal" true (Rat.equal (r 2 4) (r 1 2));
  Alcotest.(check int) "sign pos" 1 (Rat.sign (r 1 2));
  Alcotest.(check int) "sign neg" (-1) (Rat.sign (r (-1) 2));
  Alcotest.(check int) "sign zero" 0 (Rat.sign Rat.zero);
  check_rat "min" (r 1 3) (Rat.min (r 1 3) (r 1 2));
  check_rat "max" (r 1 2) (Rat.max (r 1 3) (r 1 2));
  check_rat "min_list" (r (-1) 2) (Rat.min_list [ r 1 2; r (-1) 2; Rat.zero ]);
  check_rat "max_list" (r 1 2) (Rat.max_list [ r 1 2; r (-1) 2; Rat.zero ])

let test_rounding () =
  Alcotest.(check int) "floor 7/2" 3 (Rat.floor (r 7 2));
  Alcotest.(check int) "ceil 7/2" 4 (Rat.ceil (r 7 2));
  Alcotest.(check int) "floor -7/2" (-4) (Rat.floor (r (-7) 2));
  Alcotest.(check int) "ceil -7/2" (-3) (Rat.ceil (r (-7) 2));
  Alcotest.(check int) "floor 4" 4 (Rat.floor (ri 4));
  Alcotest.(check int) "ceil 4" 4 (Rat.ceil (ri 4));
  Alcotest.(check int) "ceil 0" 0 (Rat.ceil Rat.zero);
  Alcotest.(check bool) "is_integer 4/2" true (Rat.is_integer (r 4 2));
  Alcotest.(check bool) "is_integer 1/2" false (Rat.is_integer (r 1 2))

let test_strings () =
  Alcotest.(check string) "to_string frac" "7/2" (Rat.to_string (r 7 2));
  Alcotest.(check string) "to_string int" "4" (Rat.to_string (ri 4));
  check_rat "of_string frac" (r 7 2) (Rat.of_string "7/2");
  check_rat "of_string int" (ri (-3)) (Rat.of_string "-3");
  check_rat "of_string spaces" (r 1 2) (Rat.of_string " 1 / 2 ");
  Alcotest.check_raises "of_string garbage" (Failure "Rat.of_string: x") (fun () ->
      ignore (Rat.of_string "x"))

let test_of_float () =
  check_rat "of_float 0.5" (r 1 2) (Rat.of_float 0.5);
  check_rat "of_float grid" (r 1 3) (Rat.of_float ~den:3 0.3334);
  check_rat "of_float negative" (r (-1) 4) (Rat.of_float (-0.25));
  Alcotest.(check bool) "of_float nan rejected" true
    (try
       ignore (Rat.of_float Float.nan);
       false
     with Invalid_argument _ -> true)

let test_overflow () =
  let big = Rat.make max_int 1 in
  Alcotest.check_raises "add overflow" Rat.Overflow (fun () ->
      ignore (Rat.add big big));
  Alcotest.check_raises "mul overflow" Rat.Overflow (fun () ->
      ignore (Rat.mul big (ri 2)));
  (* Cross-reduction keeps this in range: max_int is divisible by 3, so
     max_int * 1/3 reduces before multiplying. *)
  check_rat "cross-reduced mul" (ri (max_int / 3)) (Rat.mul big (r 1 3))

let prop_tests =
  let open QCheck2 in
  let pair = Gen.pair (rat_gen ()) (rat_gen ()) in
  let triple = Gen.triple (rat_gen ()) (rat_gen ()) (rat_gen ()) in
  [
    qcheck "add commutative" pair (fun (a, b) ->
        Rat.equal (Rat.add a b) (Rat.add b a));
    qcheck "add associative" triple (fun (a, b, c) ->
        Rat.equal (Rat.add a (Rat.add b c)) (Rat.add (Rat.add a b) c));
    qcheck "mul distributes" triple (fun (a, b, c) ->
        Rat.equal (Rat.mul a (Rat.add b c)) (Rat.add (Rat.mul a b) (Rat.mul a c)));
    qcheck "sub then add round-trips" pair (fun (a, b) ->
        Rat.equal a (Rat.add (Rat.sub a b) b));
    qcheck "compare antisymmetric" pair (fun (a, b) ->
        Rat.compare a b = -Rat.compare b a);
    qcheck "compare matches float" pair (fun (a, b) ->
        let c = Rat.compare a b in
        let f = Float.compare (Rat.to_float a) (Rat.to_float b) in
        c = f || (c <> 0 && f = 0));
    qcheck "to_string round-trips" (rat_gen ()) (fun a ->
        Rat.equal a (Rat.of_string (Rat.to_string a)));
    qcheck "normalised gcd" (rat_gen ()) (fun a ->
        let rec gcd x y = if y = 0 then x else gcd y (x mod y) in
        Rat.num a = 0 || gcd (abs (Rat.num a)) (Rat.den a) = 1);
    qcheck "floor <= x < floor + 1" (rat_gen ()) (fun a ->
        let f = Rat.floor a in
        let lo = ri f and hi = ri (f + 1) in
        Rat.(lo <= a) && Rat.(a < hi));
    qcheck "ceil = -floor(-x)" (rat_gen ()) (fun a ->
        Rat.ceil a = -Rat.floor (Rat.neg a));
    qcheck "inv involutive (nonzero)"
      (pos_rat_gen ())
      (fun a -> Rat.equal a (Rat.inv (Rat.inv a)));
  ]

let suite =
  [
    Alcotest.test_case "normalisation" `Quick test_normalisation;
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "comparisons" `Quick test_comparisons;
    Alcotest.test_case "rounding" `Quick test_rounding;
    Alcotest.test_case "strings" `Quick test_strings;
    Alcotest.test_case "of_float" `Quick test_of_float;
    Alcotest.test_case "overflow" `Quick test_overflow;
  ]
  @ prop_tests

(* Overflow-path comparison: cross-multiplication of these would exceed
   the native range, so the continued-fraction path must answer
   exactly. *)
let test_compare_huge () =
  let near_max = max_int - 1 in
  let a = Rat.make near_max 3 and b = Rat.make (near_max - 3) 3 in
  Alcotest.(check int) "a > b" 1 (Rat.compare a b);
  Alcotest.(check int) "b < a" (-1) (Rat.compare b a);
  (* distinct huge rationals that are equal as floats *)
  let c = Rat.make near_max 7 and d = Rat.make (near_max - 7) 7 in
  Alcotest.(check bool) "floats cannot tell them apart" true
    (Rat.to_float c = Rat.to_float d);
  Alcotest.(check int) "exact comparison can" 1 (Rat.compare c d);
  (* mixed signs through the overflow path *)
  let e = Rat.make (-near_max) 3 in
  Alcotest.(check int) "negative < positive" (-1) (Rat.compare e a);
  Alcotest.(check int) "negative symmetric" 1 (Rat.compare a e);
  Alcotest.(check int) "huge equals itself" 0 (Rat.compare c c);
  (* deep continued fraction: a/b vs (a*2+1)/(b*2+1)-style neighbours *)
  let f = Rat.make near_max (near_max - 1) in
  let g = Rat.make (near_max - 1) (near_max - 2) in
  Alcotest.(check bool) "nested fractions ordered" true
    (Rat.compare f g = -Rat.compare g f && Rat.compare f g <> 0)

let suite =
  suite @ [ Alcotest.test_case "compare beyond 63 bits" `Quick test_compare_huge ]
