(* Budget-aware repacking: budget=0 runs are bit-identical to the plain
   engine (packing, exact cost, trace stream), consolidation under
   budget only ever helps, budgets meter recourse exactly, and a
   repack run resumed from a frozen image matches the uninterrupted
   one. *)

open Dbp_num
open Dbp_core
open Dbp_repack

let workload ?(count = 80) ?(seed = 31L) () =
  Dbp_workload.Generator.generate ~seed
    { Dbp_workload.Spec.default with Dbp_workload.Spec.count = count }

let registry_names =
  [
    "first-fit";
    "best-fit";
    "worst-fit";
    "last-fit";
    "next-fit";
    "random-fit";
    "mff";
    "harmonic:4";
  ]

let policy_exn name =
  match Algorithms.find name with
  | Some p -> p
  | None -> Alcotest.failf "unknown policy %s" name

let traced_run ~policy instance =
  let buf = Buffer.create 4096 in
  let sink = Dbp_obs.Sink.to_buffer buf in
  let packing = Simulator.run ~audit:true ~sink ~policy instance in
  (packing, Buffer.contents buf)

let traced_repack ?(budget = Budget.zero) ?(repack = Repack_policy.No_repack)
    ~policy instance =
  let buf = Buffer.create 4096 in
  let sink = Dbp_obs.Sink.to_buffer buf in
  let result =
    Runner.run ~audit:true ~sink ~budget ~repack ~policy instance
  in
  (result, Buffer.contents buf)

(* -- budget=0 bit-identity across the whole registry ------------------ *)

let test_zero_budget_bit_identity () =
  let instance = workload () in
  List.iter
    (fun name ->
      let plain, plain_trace =
        traced_run ~policy:(policy_exn name) instance
      in
      let repacked, repack_trace =
        traced_repack ~budget:Budget.zero ~repack:Repack_policy.Consolidate_sparsest
          ~policy:(policy_exn name) instance
      in
      Alcotest.(check bool)
        (name ^ ": effective is the input instance")
        true
        (repacked.Runner.effective == instance);
      Test_util.check_rat
        (name ^ ": exact cost")
        plain.Packing.total_cost repacked.Runner.packing.Packing.total_cost;
      Alcotest.(check (array int))
        (name ^ ": assignment")
        plain.Packing.assignment repacked.Runner.packing.Packing.assignment;
      Alcotest.(check string) (name ^ ": trace") plain_trace repack_trace;
      Alcotest.(check int)
        (name ^ ": no migrations")
        0 repacked.Runner.stats.Runner.migrations)
    registry_names

(* -- consolidation only ever helps, and the result still validates ---- *)

let test_unlimited_consolidation_helps () =
  List.iter
    (fun seed ->
      let instance = workload ~count:120 ~seed () in
      let plain = Simulator.run ~policy:(policy_exn "first-fit") instance in
      List.iter
        (fun repack ->
          let result, _ =
            traced_repack ~budget:Budget.unlimited ~repack
              ~policy:(policy_exn "first-fit") instance
          in
          (match Packing.validate result.Runner.packing with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "invalid repacked packing: %s" msg);
          let name = Repack_policy.name repack in
          Alcotest.(check bool)
            (name ^ ": repacked cost <= plain cost")
            true
            Rat.(
              result.Runner.packing.Packing.total_cost
              <= plain.Packing.total_cost);
          Alcotest.(check int)
            (name ^ ": nothing denied at unlimited budget")
            0 result.Runner.stats.Runner.denied_triggers;
          if result.Runner.stats.Runner.migrations > 0 then
            Alcotest.(check bool)
              (name ^ ": reclaimed bin-seconds positive")
              true
              (Rat.sign result.Runner.stats.Runner.reclaimed_bin_seconds > 0))
        [ Repack_policy.Consolidate_sparsest; Repack_policy.Ffd_sparsest ])
    [ 3L; 7L; 11L ]

(* -- cost is monotone non-increasing in the budget -------------------- *)

let test_budget_monotonicity () =
  let instance = workload ~count:100 ~seed:5L () in
  let cost_at budget =
    let result, _ =
      traced_repack ~budget ~repack:Repack_policy.Consolidate_sparsest
        ~policy:(policy_exn "first-fit") instance
    in
    result.Runner.packing.Packing.total_cost
  in
  let budgets =
    [
      Budget.zero;
      { Budget.kind = Budget.Items; mode = Budget.Total Rat.one };
      { Budget.kind = Budget.Items; mode = Budget.Total (Rat.of_int 4) };
      { Budget.kind = Budget.Items; mode = Budget.Total (Rat.of_int 16) };
      Budget.unlimited;
    ]
  in
  let costs = List.map cost_at budgets in
  let rec check = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool)
          "cost non-increasing in budget" true
          Rat.(b <= a);
        check rest
    | _ -> ()
  in
  check costs

(* -- the budget meters recourse exactly ------------------------------- *)

let test_budget_metering () =
  let instance = workload ~count:100 ~seed:5L () in
  let limit = 4 in
  let result, _ =
    traced_repack
      ~budget:
        { Budget.kind = Budget.Items; mode = Budget.Total (Rat.of_int limit) }
      ~repack:Repack_policy.Consolidate_sparsest
      ~policy:(policy_exn "first-fit") instance
  in
  Alcotest.(check bool)
    "moves within the item budget" true
    (result.Runner.stats.Runner.migrations <= limit);
  let unlimited, _ =
    traced_repack ~budget:Budget.unlimited
      ~repack:Repack_policy.Consolidate_sparsest
      ~policy:(policy_exn "first-fit") instance
  in
  (* Volume accounting agrees with the item count odometer. *)
  Alcotest.(check bool)
    "volume positive iff items moved" true
    (Rat.sign unlimited.Runner.stats.Runner.migrated_volume > 0
    = (unlimited.Runner.stats.Runner.migrations > 0))

let test_spec_strings () =
  let round s =
    match Budget.spec_of_string s with
    | Error e -> Alcotest.failf "%s: %s" s e
    | Ok spec -> Budget.spec_to_string spec
  in
  Alcotest.(check string) "total" "items:total:8" (round "8");
  Alcotest.(check string) "inf" "items:inf" (round "inf");
  Alcotest.(check string) "volume event" "volume:event:1/2"
    (round "volume:event:1/2");
  Alcotest.(check string) "bucket" "items:bucket:1/4:8"
    (round "items:bucket:1/4:8");
  List.iter
    (fun bad ->
      match Budget.spec_of_string bad with
      | Ok _ -> Alcotest.failf "accepted malformed budget '%s'" bad
      | Error _ -> ())
    [ "-1"; "items:total:-3"; "volume:bucket:1:-1"; "nonsense:x"; "" ]

(* -- freeze/thaw mid-run is bit-identical ----------------------------- *)

let test_checkpoint_resume_bit_identity () =
  let instance = workload ~count:100 ~seed:13L () in
  let budget =
    { Budget.kind = Budget.Items; mode = Budget.Total (Rat.of_int 8) }
  in
  let repack = Repack_policy.Consolidate_sparsest in
  let policy () = policy_exn "best-fit" in
  let straight, straight_trace =
    traced_repack ~budget ~repack ~policy:(policy ()) instance
  in
  let events = List.length (Event.of_instance instance) in
  List.iter
    (fun cut ->
      let pre_buf = Buffer.create 4096 in
      let pre_sink = Dbp_obs.Sink.to_buffer pre_buf in
      let st =
        Runner.create ~sink:pre_sink ~budget ~repack ~policy:(policy ())
          instance
      in
      let steps = ref 0 in
      while !steps < cut && Runner.step st do
        incr steps
      done;
      let frozen = Runner.freeze st in
      let buf = Buffer.create 4096 in
      let sink = Dbp_obs.Sink.to_buffer buf in
      Dbp_obs.Sink.set_seq sink (Dbp_obs.Sink.emitted pre_sink);
      let resumed =
        Runner.thaw ~audit:true ~sink ~policy:(policy ()) ~instance frozen
      in
      Runner.drain resumed;
      let result = Runner.finish resumed in
      Test_util.check_rat
        (Printf.sprintf "cut %d: exact cost" cut)
        straight.Runner.packing.Packing.total_cost
        result.Runner.packing.Packing.total_cost;
      Alcotest.(check (array int))
        (Printf.sprintf "cut %d: assignment" cut)
        straight.Runner.packing.Packing.assignment
        result.Runner.packing.Packing.assignment;
      Alcotest.(check int)
        (Printf.sprintf "cut %d: migrations" cut)
        straight.Runner.stats.Runner.migrations
        result.Runner.stats.Runner.migrations;
      (* Pre-cut trace ++ resumed trace must be byte-identical to the
         straight-through stream. *)
      Alcotest.(check string)
        (Printf.sprintf "cut %d: trace stream" cut)
        straight_trace
        (Buffer.contents pre_buf ^ Buffer.contents buf))
    [ 0; 17; events / 2; events - 1 ]

(* -- the injector's migration rung ------------------------------------ *)

let crash_plan ~seed ~rate instance =
  let horizon = Interval.hi (Instance.packing_period instance) in
  Dbp_faults.Fault_plan.poisson_crashes ~seed ~rate ~horizon

let test_injector_ladder () =
  let open Dbp_faults in
  let instance = workload ~count:120 ~seed:5L () in
  let plan = crash_plan ~seed:55L ~rate:2.0 instance in
  let policy () = policy_exn "first-fit" in
  let evict_only = Injector.run ~audit:true ~plan ~policy:(policy ()) instance in
  (* A disarmed rung — budget 0 or policy none — is bit-identical to the
     evict-only injector, counters included. *)
  List.iter
    (fun (label, repack) ->
      let r = Injector.run ~audit:true ~repack ~plan ~policy:(policy ()) instance in
      Test_util.check_rat (label ^ ": cost")
        evict_only.Injector.packing.Packing.total_cost
        r.Injector.packing.Packing.total_cost;
      Alcotest.(check (array int))
        (label ^ ": assignment")
        evict_only.Injector.packing.Packing.assignment
        r.Injector.packing.Packing.assignment;
      Alcotest.(check int)
        (label ^ ": nothing migrated")
        0
        r.Injector.resilience.Resilience.migrated_sessions;
      Alcotest.(check int)
        (label ^ ": same interruptions")
        evict_only.Injector.resilience.Resilience.interrupted_sessions
        r.Injector.resilience.Resilience.interrupted_sessions)
    [
      ("budget=0", (Budget.zero, Repack_policy.Consolidate_sparsest));
      ("no-repack", (Budget.unlimited, Repack_policy.No_repack));
    ];
  (* An unlimited budget walks the top rung: sessions migrate instead of
     being interrupted, and the ladder's conservation law still holds. *)
  let r =
    Injector.run ~audit:true
      ~repack:(Budget.unlimited, Repack_policy.Consolidate_sparsest)
      ~plan ~policy:(policy ()) instance
  in
  (match Packing.validate r.Injector.packing with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "migrated packing invalid: %s" msg);
  let z = r.Injector.resilience in
  Alcotest.(check bool) "some sessions migrated" true
    (z.Resilience.migrated_sessions > 0);
  Alcotest.(check bool) "migrated volume positive" true
    Rat.(z.Resilience.migrated_volume > Rat.zero);
  Alcotest.(check bool) "migration spares interruptions" true
    (z.Resilience.interrupted_sessions
    < evict_only.Injector.resilience.Resilience.interrupted_sessions);
  Alcotest.(check int) "conservation: resumed + lost = interrupted"
    z.Resilience.interrupted_sessions
    (z.Resilience.resumed_sessions + z.Resilience.lost_sessions)

(* -- snapshot wire format: repack payload and the inj:repack line ----- *)

let test_snapshot_round_trip () =
  let open Dbp_checkpoint in
  let instance = workload ~count:60 ~seed:21L () in
  let budget =
    { Budget.kind = Budget.Items; mode = Budget.Total (Rat.of_int 4) }
  in
  let repack = Repack_policy.Consolidate_sparsest in
  (* A "repack" payload re-serialises canonically and verifies. *)
  let snap =
    Checkpoint.save_repack_at ~policy_name:"first-fit" ~at:60 ~budget ~repack
      instance
  in
  let text = Snapshot.to_string snap in
  (match Snapshot.of_string text with
  | Error msg -> Alcotest.failf "repack snapshot rejected: %s" msg
  | Ok snap' ->
      Alcotest.(check string) "kind" "repack" (Snapshot.kind_name snap');
      Alcotest.(check string) "canonical re-serialisation" text
        (Snapshot.to_string snap');
      let v = Checkpoint.verify instance snap' in
      Alcotest.(check (list string)) "verify mismatches" []
        v.Checkpoint.mismatches);
  (* A faults payload with the migration rung armed carries the budget
     balance through its optional inj:repack line. *)
  let open Dbp_faults in
  let plan = crash_plan ~seed:7L ~rate:2.0 instance in
  let straight =
    Injector.run ~repack:(budget, repack) ~plan ~policy:(policy_exn "first-fit")
      instance
  in
  let st =
    Injector.create ~repack:(budget, repack) ~plan
      ~policy:(policy_exn "first-fit") instance
  in
  let rec advance n = if n > 0 && Injector.step st then advance (n - 1) in
  advance 60;
  let snap =
    {
      Snapshot.meta =
        {
          Snapshot.policy = "first-fit";
          seed = Algorithms.default_seed;
          events_applied = Injector.events_done st;
          trace_seq = 0;
        };
      metrics = None;
      payload = Snapshot.Faults (Injector.freeze st);
    }
  in
  let text = Snapshot.to_string snap in
  match Snapshot.of_string text with
  | Error msg -> Alcotest.failf "faults+repack snapshot rejected: %s" msg
  | Ok snap' ->
      Alcotest.(check string) "canonical re-serialisation" text
        (Snapshot.to_string snap');
      let { Checkpoint.fresult = resumed; _ } =
        Checkpoint.resume_faults instance snap'
      in
      Test_util.check_rat "resumed cost"
        straight.Injector.packing.Packing.total_cost
        resumed.Injector.packing.Packing.total_cost;
      Alcotest.(check int) "resumed migrations"
        straight.Injector.resilience.Resilience.migrated_sessions
        resumed.Injector.resilience.Resilience.migrated_sessions;
      Alcotest.(check int) "resumed interruptions"
        straight.Injector.resilience.Resilience.interrupted_sessions
        resumed.Injector.resilience.Resilience.interrupted_sessions

(* -- qcheck: migration storms ----------------------------------------- *)

let storm_gen =
  QCheck2.Gen.(
    map3
      (fun instance seed rate ->
        (instance, Int64.of_int seed, float_of_int rate /. 2.0))
      (Test_util.instance_gen ~max_items:25 ())
      (int_range 0 10_000) (int_range 0 8))

let run_storm ?repack (instance, seed, rate) =
  let plan = crash_plan ~seed ~rate instance in
  Dbp_faults.Injector.run ~audit:true ?repack
    ~config:
      { Dbp_faults.Injector.default_config with Dbp_faults.Injector.seed }
    ~plan ~policy:First_fit.policy instance

let storm_props =
  let open Dbp_faults in
  [
    Test_util.qcheck ~count:100
      "storm: migrated packings validate, accounting conserved" storm_gen
      (fun input ->
        match
          run_storm
            ~repack:(Budget.unlimited, Repack_policy.Consolidate_sparsest)
            input
        with
        | exception Invalid_argument _ -> true (* everything shed *)
        | { Injector.packing; resilience = z; _ } ->
            Packing.validate packing = Ok ()
            && z.Resilience.resumed_sessions + z.Resilience.lost_sessions
               = z.Resilience.interrupted_sessions
            && (z.Resilience.migrated_sessions = 0
               || Rat.(z.Resilience.migrated_volume > Rat.zero)));
    Test_util.qcheck ~count:100
      "storm: token-bucket budget validates under ffd" storm_gen
      (fun input ->
        let budget =
          {
            Budget.kind = Budget.Volume;
            mode =
              Budget.Token_bucket
                { rate = Rat.make 1 4; burst = Rat.of_int 2 };
          }
        in
        match
          run_storm ~repack:(budget, Repack_policy.Ffd_sparsest) input
        with
        | exception Invalid_argument _ -> true
        | { Injector.packing; _ } -> Packing.validate packing = Ok ());
    Test_util.qcheck ~count:100
      "storm: budget=0 is bit-identical to the evict-only injector"
      storm_gen
      (fun input ->
        match
          ( run_storm input,
            run_storm
              ~repack:(Budget.zero, Repack_policy.Consolidate_sparsest)
              input )
        with
        | exception Invalid_argument _ -> true
        | evict_only, zero ->
            Rat.equal evict_only.Injector.packing.Packing.total_cost
              zero.Injector.packing.Packing.total_cost
            && evict_only.Injector.packing.Packing.assignment
               = zero.Injector.packing.Packing.assignment
            && zero.Injector.resilience.Resilience.migrated_sessions = 0
            && evict_only.Injector.resilience.Resilience.interrupted_sessions
               = zero.Injector.resilience.Resilience.interrupted_sessions
            && evict_only.Injector.resilience.Resilience.shed_requests
               = zero.Injector.resilience.Resilience.shed_requests);
  ]

let suite =
  [
    Alcotest.test_case "budget=0 bit-identical across registry" `Quick
      test_zero_budget_bit_identity;
    Alcotest.test_case "unlimited consolidation helps" `Quick
      test_unlimited_consolidation_helps;
    Alcotest.test_case "cost monotone in budget" `Quick
      test_budget_monotonicity;
    Alcotest.test_case "budget meters recourse" `Quick test_budget_metering;
    Alcotest.test_case "budget spec strings" `Quick test_spec_strings;
    Alcotest.test_case "freeze/thaw bit-identity" `Quick
      test_checkpoint_resume_bit_identity;
    Alcotest.test_case "injector degradation ladder" `Quick
      test_injector_ladder;
    Alcotest.test_case "snapshot wire round trip" `Quick
      test_snapshot_round_trip;
  ]
  @ storm_props
