(* Checkpoint/restore: a resumed run must be bit-identical to one that
   never stopped — packing, exact cost, trace stream, metrics registry
   and (for fault-injected runs) every resilience counter.  Also pins
   the wire format's rejection of corrupt images. *)

open Dbp_num
open Dbp_core
open Dbp_checkpoint

let workload ?(count = 60) ?(seed = 9L) () =
  Dbp_workload.Generator.generate ~seed
    { Dbp_workload.Spec.default with Dbp_workload.Spec.count = count }

let registry_names =
  [
    "first-fit";
    "best-fit";
    "worst-fit";
    "last-fit";
    "next-fit";
    "random-fit";
    "mff";
    "harmonic:4";
  ]

let policy_exn name =
  match Algorithms.find name with
  | Some p -> p
  | None -> Alcotest.failf "unknown policy %s" name

(* -- file round trip across every registry policy -------------------- *)

let test_round_trip_all_policies () =
  let instance = workload () in
  let events = List.length (Event.of_instance instance) in
  List.iter
    (fun name ->
      let snap =
        Checkpoint.save_at ~policy_name:name ~at:(events / 2) instance
      in
      let path = Filename.temp_file "dbp-ckpt" ".ndjson" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Checkpoint.save_file path snap;
          match Checkpoint.load_file path with
          | Result.Error msg ->
              Alcotest.failf "%s: reload failed: %s" name msg
          | Ok snap ->
              let verdict = Checkpoint.verify instance snap in
              if not verdict.Checkpoint.ok then
                Alcotest.failf "%s: %s" name
                  (String.concat "; " verdict.Checkpoint.mismatches)))
    registry_names

(* The serialiser is canonical: parse-then-print is the identity. *)
let test_canonical_round_trip () =
  let instance = workload () in
  let snap = Checkpoint.save_at ~policy_name:"best-fit" ~at:37 instance in
  let text = Snapshot.to_string snap in
  match Snapshot.of_string text with
  | Result.Error msg -> Alcotest.fail msg
  | Ok snap ->
      Alcotest.(check string) "canonical" text (Snapshot.to_string snap)

(* -- checkpoint at the extremes: nothing applied, everything applied -- *)

let test_boundary_cuts () =
  let instance = workload ~count:20 () in
  let events = List.length (Event.of_instance instance) in
  List.iter
    (fun at ->
      let snap = Checkpoint.save_at ~policy_name:"first-fit" ~at instance in
      let verdict = Checkpoint.verify instance snap in
      if not verdict.Checkpoint.ok then
        Alcotest.failf "cut %d: %s" at
          (String.concat "; " verdict.Checkpoint.mismatches))
    [ 0; 1; events - 1; events ];
  Alcotest.check_raises "negative cut"
    (Checkpoint.Error
       (Printf.sprintf "checkpoint index -1 outside [0, %d]" events))
    (fun () ->
      ignore (Checkpoint.save_at ~policy_name:"first-fit" ~at:(-1) instance))

(* -- the trace stream continues seamlessly ---------------------------- *)

let test_trace_stream_continues () =
  let instance = workload () in
  let policy = policy_exn "first-fit" in
  let buf_full = Buffer.create 1024 in
  let full =
    Simulator.run ~sink:(Dbp_obs.Sink.to_buffer buf_full) ~policy instance
  in
  let buf_head = Buffer.create 1024 in
  let snap =
    Checkpoint.save_at
      ~sink:(Dbp_obs.Sink.to_buffer buf_head)
      ~policy_name:"first-fit" ~at:41 instance
  in
  let buf_tail = Buffer.create 1024 in
  let { Checkpoint.packing; _ } =
    Checkpoint.resume ~sink:(Dbp_obs.Sink.to_buffer buf_tail) instance snap
  in
  Alcotest.check Test_util.rat "same cost" full.Packing.total_cost
    packing.Packing.total_cost;
  Alcotest.(check string)
    "head + tail = uninterrupted stream"
    (Buffer.contents buf_full)
    (Buffer.contents buf_head ^ Buffer.contents buf_tail)

(* -- metrics registry restores bit-identically ------------------------ *)

let test_metrics_round_trip () =
  let instance = workload () in
  let policy = policy_exn "best-fit" in
  let m_full = Dbp_obs.Metrics.create () in
  ignore (Simulator.run ~metrics:m_full ~policy instance);
  let m_head = Dbp_obs.Metrics.create () in
  let snap =
    Checkpoint.save_at ~metrics:m_head ~policy_name:"best-fit" ~at:53 instance
  in
  Alcotest.(check bool) "dump captured" true (snap.Snapshot.metrics <> None);
  let resumed = Checkpoint.resume instance snap in
  match resumed.Checkpoint.metrics with
  | None -> Alcotest.fail "resume dropped the metrics registry"
  | Some m_res ->
      let df = Dbp_obs.Metrics.dump m_full in
      let dr = Dbp_obs.Metrics.dump m_res in
      Alcotest.(check (list (pair string int)))
        "counters" df.Dbp_obs.Metrics.d_counters dr.Dbp_obs.Metrics.d_counters;
      Alcotest.(check (list (pair string int)))
        "gauges" df.Dbp_obs.Metrics.d_gauges dr.Dbp_obs.Metrics.d_gauges;
      Alcotest.(check (list (pair string Test_util.rat)))
        "exact sums" df.Dbp_obs.Metrics.d_rat_sums
        dr.Dbp_obs.Metrics.d_rat_sums;
      Alcotest.(check (list (pair string (array (float 0.0)))))
        "histogram observations" df.Dbp_obs.Metrics.d_hists
        dr.Dbp_obs.Metrics.d_hists

(* -- crash-recovery image: fault-injected run, frozen mid-drain ------- *)

let test_faults_round_trip () =
  let instance = workload ~count:80 ~seed:17L () in
  let policy = policy_exn "random-fit" in
  let horizon = Interval.hi (Instance.packing_period instance) in
  let plan =
    Dbp_faults.Fault_plan.poisson_crashes ~seed:23L ~rate:1.5 ~horizon
  in
  let straight = Dbp_faults.Injector.run ~plan ~policy instance in
  let st = Dbp_faults.Injector.create ~plan ~policy instance in
  let rec advance n =
    if n > 0 && Dbp_faults.Injector.step st then advance (n - 1)
  in
  advance 70;
  let snap =
    {
      Snapshot.meta =
        {
          Snapshot.policy = "random-fit";
          seed = Algorithms.default_seed;
          events_applied = Dbp_faults.Injector.events_done st;
          trace_seq = 0;
        };
      metrics = None;
      payload = Snapshot.Faults (Dbp_faults.Injector.freeze st);
    }
  in
  let snap =
    match Snapshot.of_string (Snapshot.to_string snap) with
    | Ok s -> s
    | Result.Error msg -> Alcotest.failf "fault round trip: %s" msg
  in
  let { Checkpoint.fresult = resumed; _ } =
    Checkpoint.resume_faults instance snap
  in
  let sp = straight.Dbp_faults.Injector.packing in
  let rp = resumed.Dbp_faults.Injector.packing in
  Alcotest.check Test_util.rat "same faulty cost" sp.Packing.total_cost
    rp.Packing.total_cost;
  Alcotest.(check int) "same bins" (Packing.bins_used sp) (Packing.bins_used rp);
  let sz = straight.Dbp_faults.Injector.resilience in
  let rz = resumed.Dbp_faults.Injector.resilience in
  let open Dbp_faults in
  Alcotest.(check int)
    "interrupted" sz.Resilience.interrupted_sessions
    rz.Resilience.interrupted_sessions;
  Alcotest.(check int)
    "resumed" sz.Resilience.resumed_sessions rz.Resilience.resumed_sessions;
  Alcotest.(check int)
    "lost" sz.Resilience.lost_sessions rz.Resilience.lost_sessions;
  Alcotest.(check (list Test_util.rat))
    "recovery latencies" sz.Resilience.recovery_latencies
    rz.Resilience.recovery_latencies

(* -- corrupt images are rejected, not half-loaded --------------------- *)

(* Replace every occurrence of [sub] with [by] (no regex dependency). *)
let replace ~sub ~by text =
  let n = String.length sub in
  let buf = Buffer.create (String.length text) in
  let i = ref 0 in
  while !i <= String.length text - n do
    if String.sub text !i n = sub then begin
      Buffer.add_string buf by;
      i := !i + n
    end
    else begin
      Buffer.add_char buf text.[!i];
      incr i
    end
  done;
  Buffer.add_string buf (String.sub text !i (String.length text - !i));
  Buffer.contents buf

let expect_corrupt what text =
  match Snapshot.of_string text with
  | Ok _ -> Alcotest.failf "%s: corrupt snapshot accepted" what
  | Result.Error _ -> ()

let test_corrupt_rejected () =
  let instance = workload ~count:20 () in
  let snap = Checkpoint.save_at ~policy_name:"first-fit" ~at:11 instance in
  let text = Snapshot.to_string snap in
  let lines = String.split_on_char '\n' text in
  let without p =
    String.concat "\n" (List.filter (fun l -> not (p l)) lines)
  in
  (* truncation: the footer is gone *)
  expect_corrupt "no footer"
    (without (fun l ->
         String.length l >= 7 && String.sub l 0 7 = {|{"end":|}));
  (* a body line vanished but the footer still promises it *)
  expect_corrupt "missing bin line"
    (without (fun l ->
         String.length l >= 8 && String.sub l 0 8 = {|{"bin":0|}));
  (* wrong schema *)
  expect_corrupt "alien schema" (replace ~sub:Snapshot.schema ~by:"dbp-nope/9" text);
  (* not NDJSON at all *)
  expect_corrupt "garbage" "not a snapshot\n";
  expect_corrupt "empty" "";
  (* an unknown policy parses but cannot resume *)
  let renamed =
    replace ~sub:{|"policy":"first-fit"|} ~by:{|"policy":"bogus"|} text
  in
  match Snapshot.of_string renamed with
  | Result.Error msg -> Alcotest.failf "rename should parse: %s" msg
  | Ok snap -> (
      match Checkpoint.resume instance snap with
      | exception Checkpoint.Error _ -> ()
      | _ -> Alcotest.fail "unknown policy resumed")

let suite =
  [
    Alcotest.test_case "round trip, every registry policy" `Slow
      test_round_trip_all_policies;
    Alcotest.test_case "canonical serialisation" `Quick
      test_canonical_round_trip;
    Alcotest.test_case "boundary cuts" `Quick test_boundary_cuts;
    Alcotest.test_case "trace stream continues" `Quick
      test_trace_stream_continues;
    Alcotest.test_case "metrics round trip" `Quick test_metrics_round_trip;
    Alcotest.test_case "fault-injected round trip" `Slow
      test_faults_round_trip;
    Alcotest.test_case "corrupt snapshots rejected" `Quick
      test_corrupt_rejected;
  ]
