open Dbp_num
open Dbp_core
open Dbp_cloudgaming
open Test_util

let mk ?(size = r 1 2) a d =
  Item.make ~id:0 ~size ~arrival:(ri a) ~departure:(ri d)

(* ---- heterogeneous capacities in the core simulator ---------------- *)

let two_tier tag = if tag = "big" then Rat.two else Rat.one

let big_little_policy =
  (* Items > 1 go to (or open) "big" bins; others first-fit anywhere. *)
  Policy.stateless ~name:"big-little" (fun ~capacity:_ ~now:_ ~bins ~size ->
      match Fit.first bins ~size with
      | Some v -> Policy.Existing v.Bin.bin_id
      | None -> Policy.New_bin (if Rat.(size > Rat.one) then "big" else "little"))

let test_heterogeneous_capacities () =
  let instance =
    Instance.create ~capacity:Rat.two
      [ mk ~size:(r 3 2) 0 4; mk ~size:(r 1 2) 0 4; mk ~size:(r 1 2) 1 3 ]
  in
  let packing =
    Simulator.run ~tag_capacity:two_tier ~policy:big_little_policy instance
  in
  assert_valid_packing packing;
  (* 3/2 opens a big bin (residual 1/2): the first 1/2 joins it; the
     second 1/2 does not fit (big is full) -> little bin. *)
  Alcotest.(check int) "two bins" 2 (Packing.bins_used packing);
  let b0 = packing.Packing.bins.(0) in
  Alcotest.(check string) "first bin is big" "big" b0.Packing.tag;
  check_rat "big capacity" Rat.two b0.Packing.capacity;
  check_rat "big filled" Rat.two b0.Packing.max_level;
  let b1 = packing.Packing.bins.(1) in
  check_rat "little capacity" Rat.one b1.Packing.capacity

let test_oversized_for_tag_rejected () =
  let instance =
    Instance.create ~capacity:Rat.two [ mk ~size:(r 3 2) 0 1 ]
  in
  let little_only =
    Policy.stateless ~name:"little-only" (fun ~capacity:_ ~now:_ ~bins:_ ~size:_ ->
        Policy.New_bin "little")
  in
  Alcotest.(check bool) "item bigger than its tag capacity" true
    (try
       ignore (Simulator.run ~tag_capacity:two_tier ~policy:little_only instance);
       false
     with Simulator.Invalid_decision _ -> true)

(* ---- Fleet ----------------------------------------------------------- *)

let requests =
  Gaming_workload.generate ~seed:8L
    { Gaming_workload.default_profile with
      Gaming_workload.duration_hours = 4.0;
      base_rate = 25.0 }

let test_vm_type_validation () =
  Alcotest.(check bool) "zero gpu" true
    (try
       ignore (Fleet.vm_type ~name:"x" ~gpu:Rat.zero ~hourly_price:Rat.one);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "duplicate names" true
    (try
       ignore
         (Fleet.policy
            ~types:
              [
                Fleet.vm_type ~name:"a" ~gpu:Rat.one ~hourly_price:Rat.one;
                Fleet.vm_type ~name:"a" ~gpu:Rat.two ~hourly_price:Rat.one;
              ]
            ~strategy:Fleet.Largest);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "unknown single type" true
    (try
       ignore
         (Fleet.policy ~types:Fleet.default_types
            ~strategy:(Fleet.Single "nope"));
       false
     with Invalid_argument _ -> true)

let test_fleet_dispatch () =
  let report =
    Fleet.dispatch ~types:Fleet.default_types ~strategy:Fleet.Smallest_fitting
      requests
  in
  assert_valid_packing report.Fleet.packing;
  (* all games fit on 1 GPU, so smallest-fitting launches only smalls *)
  List.iter
    (fun (name, n) ->
      if name <> "g.small" && n > 0 then
        Alcotest.failf "unexpected %s servers" name)
    report.Fleet.servers_by_type;
  Alcotest.(check bool) "positive cost" true
    Rat.(report.Fleet.dollar_cost > Rat.zero)

let test_fleet_largest_uses_xlarge_only () =
  let report =
    Fleet.dispatch ~types:Fleet.default_types ~strategy:Fleet.Largest requests
  in
  List.iter
    (fun (name, n) ->
      if name <> "g.xlarge" && n > 0 then
        Alcotest.failf "unexpected %s servers" name)
    report.Fleet.servers_by_type;
  (* capacity respected per type *)
  Array.iter
    (fun (b : Packing.bin_record) ->
      check_rat "xlarge capacity" (ri 4) b.Packing.capacity;
      Alcotest.(check bool) "level within capacity" true
        Rat.(b.Packing.max_level <= b.Packing.capacity))
    report.Fleet.packing.Packing.bins

let test_fleet_cost_accounting () =
  (* single-type fleet at price p costs exactly p * server-hours *)
  let report =
    Fleet.dispatch ~types:Fleet.default_types ~strategy:(Fleet.Single "g.large")
      requests
  in
  let hours =
    Array.to_list report.Fleet.packing.Packing.bins
    |> List.map (fun b -> Interval.length (Packing.usage_period b))
    |> Rat.sum
  in
  check_rat "cost = 1.9 * hours" (Rat.mul (r 19 10) hours) report.Fleet.dollar_cost

let test_fleet_consolidation_shrinks_peak () =
  let small =
    Fleet.dispatch ~types:Fleet.default_types ~strategy:(Fleet.Single "g.small")
      requests
  in
  let xlarge =
    Fleet.dispatch ~types:Fleet.default_types ~strategy:(Fleet.Single "g.xlarge")
      requests
  in
  Alcotest.(check bool) "xlarge peak smaller" true
    (xlarge.Fleet.packing.Packing.max_bins
    < small.Fleet.packing.Packing.max_bins)

let prop_tests =
  [
    qcheck ~count:80 "fleet packings valid for every strategy"
      QCheck2.Gen.(map Int64.of_int (int_range 1 500))
      (fun seed ->
        let requests =
          Gaming_workload.generate ~seed
            { Gaming_workload.default_profile with
              Gaming_workload.duration_hours = 2.0;
              base_rate = 20.0 }
        in
        requests = []
        || List.for_all
             (fun strategy ->
               let report =
                 Fleet.dispatch ~types:Fleet.default_types ~strategy requests
               in
               Packing.validate report.Fleet.packing = Ok ()
               && Array.for_all
                    (fun (b : Packing.bin_record) ->
                      Rat.(b.Packing.max_level <= b.Packing.capacity))
                    report.Fleet.packing.Packing.bins)
             [ Fleet.Single "g.large"; Fleet.Smallest_fitting; Fleet.Largest ]);
  ]

let suite =
  [
    Alcotest.test_case "heterogeneous capacities" `Quick
      test_heterogeneous_capacities;
    Alcotest.test_case "oversized for tag" `Quick test_oversized_for_tag_rejected;
    Alcotest.test_case "vm type validation" `Quick test_vm_type_validation;
    Alcotest.test_case "smallest-fitting dispatch" `Quick test_fleet_dispatch;
    Alcotest.test_case "largest strategy" `Quick
      test_fleet_largest_uses_xlarge_only;
    Alcotest.test_case "cost accounting" `Quick test_fleet_cost_accounting;
    Alcotest.test_case "consolidation shrinks peak" `Quick
      test_fleet_consolidation_shrinks_peak;
  ]
  @ prop_tests
