open Dbp_num
open Dbp_core
open Test_util

let mk ?(size = r 1 2) a d =
  Item.make ~id:0 ~size ~arrival:(ri a) ~departure:(ri d)

let inst items = Instance.create ~capacity:Rat.one items

(* Scenario: bin 0 holds 1/2 (residual 1/2), bin 1 holds 3/4 (residual
   1/4). A new item of size 1/5 fits in both; each policy picks its
   characteristic bin. *)
let choice_scenario policy =
  let instance =
    inst
      [
        mk ~size:(r 1 2) 0 10;  (* bin 0 *)
        mk ~size:(r 2 3) 0 10;  (* bin 1: 1/2 + 2/3 > 1 *)
        mk ~size:(r 1 12) 1 10; (* goes somewhere; FF: bin 0 -> levels 7/12, 2/3 *)
        mk ~size:(r 1 5) 2 10;
      ]
  in
  let packing = Simulator.run ~policy instance in
  assert_valid_packing packing;
  packing.Packing.assignment.(3)

let test_first_fit_choice () =
  Alcotest.(check int) "FF picks earliest" 0 (choice_scenario First_fit.policy)

let test_best_fit_choice () =
  (* levels after item 2 via FF-placement... depends on policy for item 2
     as well: under BF item 2 (size 1/12) goes to bin 1 (level 2/3 ->
     3/4). Then item 3 (1/5): bin 0 level 1/2 (residual 1/2), bin 1
     level 3/4 (residual 1/4): best fit -> bin 1. *)
  Alcotest.(check int) "BF picks fullest" 1 (choice_scenario Best_fit.policy)

let test_worst_fit_choice () =
  (* WF: item 2 -> bin 0 (7/12); item 3: residuals 5/12 vs 1/3: bin 0. *)
  Alcotest.(check int) "WF picks emptiest" 0 (choice_scenario Worst_fit.policy)

let test_last_fit_choice () =
  Alcotest.(check int) "LF picks latest opened" 1
    (choice_scenario Last_fit.policy)

let test_next_fit_not_any_fit () =
  (* Two bins open; item fits only in the older one. Next Fit ignores it
     and opens a third bin. *)
  let instance =
    inst
      [
        mk ~size:(r 1 4) 0 10;  (* bin 0 *)
        mk ~size:(r 4 5) 1 10;  (* bin 1 *)
        mk ~size:(r 1 2) 2 10;  (* fits bin 0 only; NF opens bin 2 *)
      ]
  in
  let packing = Simulator.run ~policy:Next_fit.policy instance in
  assert_valid_packing packing;
  Alcotest.(check int) "three bins" 3 (Packing.bins_used packing);
  Alcotest.(check int) "violation recorded" 1 packing.Packing.any_fit_violations;
  let ff = Simulator.run ~policy:First_fit.policy instance in
  Alcotest.(check int) "FF uses two" 2 (Packing.bins_used ff)

let test_next_fit_uses_current () =
  let instance = inst [ mk ~size:(r 1 4) 0 10; mk ~size:(r 1 4) 1 10 ] in
  let packing = Simulator.run ~policy:Next_fit.policy instance in
  Alcotest.(check int) "one bin" 1 (Packing.bins_used packing)

let test_random_fit_deterministic_per_seed () =
  let instance =
    Dbp_workload.Generator.generate ~seed:5L Dbp_workload.Spec.default
  in
  let p1 = Simulator.run ~policy:(Random_fit.policy ~seed:11L) instance in
  let p2 = Simulator.run ~policy:(Random_fit.policy ~seed:11L) instance in
  Alcotest.(check bool) "same assignment" true
    (p1.Packing.assignment = p2.Packing.assignment);
  assert_valid_packing p1

let test_mff_separates_pools () =
  (* k = 2: threshold 1/2. A large (1/2) and a small (1/4) item coexist:
     MFF must use two bins even though one would fit both. *)
  let instance = inst [ mk ~size:(r 1 2) 0 10; mk ~size:(r 1 4) 0 10 ] in
  let packing =
    Simulator.run ~policy:(Modified_first_fit.policy ~k:Rat.two) instance
  in
  assert_valid_packing packing;
  Alcotest.(check int) "two bins" 2 (Packing.bins_used packing);
  let tags =
    Array.to_list packing.Packing.bins
    |> List.map (fun (b : Packing.bin_record) -> b.tag)
    |> List.sort compare
  in
  Alcotest.(check (list string)) "pool tags"
    [ Modified_first_fit.large_tag; Modified_first_fit.small_tag ]
    tags;
  Alcotest.(check int) "one any-fit violation" 1
    packing.Packing.any_fit_violations

let test_mff_first_fit_within_pool () =
  (* Three small items (k=2): behave exactly like FF. *)
  let instance =
    inst
      [ mk ~size:(r 1 3) 0 10; mk ~size:(r 1 3) 1 10; mk ~size:(r 1 3) 2 10 ]
  in
  let mff = Simulator.run ~policy:(Modified_first_fit.policy ~k:Rat.two) instance in
  let ff = Simulator.run ~policy:First_fit.policy instance in
  Alcotest.(check bool) "same assignment as FF" true
    (mff.Packing.assignment = ff.Packing.assignment)

let test_mff_parameter_validation () =
  Alcotest.(check bool) "k <= 1 rejected" true
    (try
       ignore (Modified_first_fit.policy ~k:Rat.one);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "mu < 1 rejected" true
    (try
       ignore (Modified_first_fit.policy_known_mu ~mu:(r 1 2));
       false
     with Invalid_argument _ -> true)

let test_registry () =
  Alcotest.(check int) "all policies" 8 (List.length (Algorithms.all ()));
  List.iter
    (fun name ->
      match Algorithms.find name with
      | Some _ -> ()
      | None -> Alcotest.failf "lookup failed: %s" name)
    [ "first-fit"; "ff"; "best-fit"; "worst-fit"; "last-fit"; "next-fit";
      "random-fit"; "mff"; "mff:9/2"; "harmonic:3" ];
  Alcotest.(check bool) "unknown name" true (Algorithms.find "zzz" = None);
  Alcotest.(check bool) "mff-known-mu needs mu" true
    (Algorithms.find "mff-known-mu" = None);
  Alcotest.(check bool) "mff-known-mu with mu" true
    (Algorithms.find ~mu:(ri 4) "mff-known-mu" <> None);
  Alcotest.(check bool) "bad mff param" true (Algorithms.find "mff:x" = None)

(* FF beats or matches the naive per-item cost; on the fragmentation
   workload the classic Theorem 1 behaviour shows: FF pays k * mu. *)
let test_ff_on_fragmentation () =
  let mu = ri 5 and k = 4 in
  let instance = Dbp_workload.Patterns.fragmentation ~k ~mu in
  let packing = Simulator.run ~policy:First_fit.policy instance in
  assert_valid_packing packing;
  Alcotest.(check int) "k bins" k (Packing.bins_used packing);
  check_rat "cost k*mu" (Rat.mul_int mu k) packing.Packing.total_cost

(* Harmonic class boundaries are exact rationals: W/j itself belongs
   to class j (classes are (W/(j+1), W/j], the last one catch-all), at
   any capacity, with the just-inside neighbours on the expected side. *)
let test_harmonic_boundaries () =
  List.iter
    (fun capacity ->
      List.iter
        (fun m ->
          for j = 1 to 2 * m do
            Alcotest.(check int)
              (Printf.sprintf "W/%d, %d classes" j m)
              (min j m)
              (Harmonic_fit.class_of ~capacity ~classes:m
                 (Rat.div_int capacity j))
          done;
          let eps = Rat.div_int capacity 1000 in
          for j = 1 to m - 1 do
            (* still above W/(j+1): class j *)
            Alcotest.(check int)
              (Printf.sprintf "W/%d - eps, %d classes" j m)
              j
              (Harmonic_fit.class_of ~capacity ~classes:m
                 (Rat.sub (Rat.div_int capacity j) eps));
            (* just above W/(j+1): still class j *)
            Alcotest.(check int)
              (Printf.sprintf "W/%d + eps, %d classes" (j + 1) m)
              j
              (Harmonic_fit.class_of ~capacity ~classes:m
                 (Rat.add (Rat.div_int capacity (j + 1)) eps))
          done)
        [ 2; 3; 4; 6 ])
    [ Rat.one; r 3 2; r 7 10 ];
  let oob size =
    match Harmonic_fit.class_of ~capacity:Rat.one ~classes:4 size with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "zero rejected" true (oob Rat.zero);
  Alcotest.(check bool) "negative rejected" true (oob (r (-1) 2));
  Alcotest.(check bool) "oversize rejected" true (oob (r 3 2))

(* MFF's pool split at exactly size = W/k: the Theorem 3 premise is
   "large" means size >= W/k, so the boundary item is large. *)
let test_mff_boundary_item_is_large () =
  let instance =
    inst
      [
        mk ~size:(r 1 8) 0 10;  (* exactly W/k for k = 8: large pool *)
        mk ~size:(r 1 16) 0 10; (* strictly below W/k: small pool *)
      ]
  in
  let packing =
    Simulator.run ~policy:Modified_first_fit.policy_mu_oblivious instance
  in
  assert_valid_packing packing;
  Alcotest.(check int) "pools never share a bin" 2 (Packing.bins_used packing);
  Alcotest.(check string)
    "boundary item in the large pool" Modified_first_fit.large_tag
    packing.Packing.bins.(packing.Packing.assignment.(0)).Packing.tag;
  Alcotest.(check string)
    "sub-boundary item in the small pool" Modified_first_fit.small_tag
    packing.Packing.bins.(packing.Packing.assignment.(1)).Packing.tag

(* Sizes n/16 with n >= 2 are all >= W/8 on capacity 1 — the large
   pool swallows the whole load, boundary items included. *)
let all_large_instance_gen ?(max_items = 30) ?(mu_max = 8) () =
  QCheck2.Gen.(
    let item_gen =
      map3
        (fun size_num arr dur_frac ->
          let size = Rat.make size_num 16 in
          let arrival = Rat.make arr 4 in
          let duration =
            Rat.add Rat.one (Rat.make (dur_frac mod ((mu_max - 1) * 4)) 4)
          in
          Item.make ~id:0 ~size ~arrival ~departure:(Rat.add arrival duration))
        (int_range 2 16) (int_range 0 80) (int_range 0 1000)
    in
    map
      (fun items -> Instance.create ~capacity:Rat.one items)
      (list_size (int_range 1 max_items) item_gen))

let prop_tests =
  [
    qcheck ~count:300 "harmonic class_of total over (0, W]"
      QCheck2.Gen.(
        triple (int_range 2 6) (int_range 1 60) (int_range 1 60))
      (fun (classes, a, b) ->
        (* size = min(a,b)/max(a,b) lies in (0, 1] *)
        let size = Rat.make (min a b) (max a b) in
        let cls = Harmonic_fit.class_of ~capacity:Rat.one ~classes size in
        (* total and in range, and the defining window holds exactly *)
        let next = Rat.make 1 (cls + 1) in
        1 <= cls && cls <= classes
        && Rat.(size <= Rat.make 1 cls)
        && (cls = classes || Rat.(size > next)));
    qcheck ~count:150 "MFF = FF when every item is large (boundary incl.)"
      (all_large_instance_gen ()) (fun instance ->
        (* all sizes >= W/8: MFF's large pool is the whole load *)
        let ff = Simulator.run ~policy:First_fit.policy instance in
        let mff =
          Simulator.run ~policy:Modified_first_fit.policy_mu_oblivious instance
        in
        mff.Packing.assignment = ff.Packing.assignment
        && Rat.equal mff.Packing.total_cost ff.Packing.total_cost);
    qcheck ~count:150 "MFF never mixes pools" (instance_gen ())
      (fun instance ->
        let threshold = Rat.div (Instance.capacity instance) (ri 8) in
        let packing =
          Simulator.run ~policy:Modified_first_fit.policy_mu_oblivious instance
        in
        Array.for_all
          (fun (b : Packing.bin_record) ->
            List.for_all
              (fun id ->
                let item = Instance.item instance id in
                if b.tag = Modified_first_fit.large_tag then
                  Rat.(item.Item.size >= threshold)
                else Rat.(item.Item.size < threshold))
              b.item_ids)
          packing.Packing.bins);
    qcheck ~count:150 "MFF = FF when every item is small"
      (small_instance_gen ~k:8 ()) (fun instance ->
        (* all sizes < W/8: MFF's small pool is the whole load, so it
           must replicate First Fit decision for decision *)
        let ff = Simulator.run ~policy:First_fit.policy instance in
        let mff =
          Simulator.run ~policy:Modified_first_fit.policy_mu_oblivious instance
        in
        mff.Packing.assignment = ff.Packing.assignment
        && Rat.equal mff.Packing.total_cost ff.Packing.total_cost);
    qcheck ~count:150 "single policies agree on conflict-free loads"
      (instance_gen ~max_items:6 ()) (fun instance ->
        (* when max_bins = 1 for FF, every any-fit algorithm pays the
           same total cost *)
        let ff = Simulator.run ~policy:First_fit.policy instance in
        ff.Packing.max_bins > 1
        || List.for_all
             (fun policy ->
               Rat.equal
                 (Simulator.run ~policy instance).Packing.total_cost
                 ff.Packing.total_cost)
             (Algorithms.any_fit_family ()));
  ]

let suite =
  [
    Alcotest.test_case "first fit choice" `Quick test_first_fit_choice;
    Alcotest.test_case "best fit choice" `Quick test_best_fit_choice;
    Alcotest.test_case "worst fit choice" `Quick test_worst_fit_choice;
    Alcotest.test_case "last fit choice" `Quick test_last_fit_choice;
    Alcotest.test_case "next fit is not any fit" `Quick test_next_fit_not_any_fit;
    Alcotest.test_case "next fit reuses current" `Quick test_next_fit_uses_current;
    Alcotest.test_case "random fit deterministic" `Quick
      test_random_fit_deterministic_per_seed;
    Alcotest.test_case "MFF separates pools" `Quick test_mff_separates_pools;
    Alcotest.test_case "MFF = FF within a pool" `Quick
      test_mff_first_fit_within_pool;
    Alcotest.test_case "MFF validation" `Quick test_mff_parameter_validation;
    Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "FF on fragmentation" `Quick test_ff_on_fragmentation;
    Alcotest.test_case "harmonic class boundaries" `Quick
      test_harmonic_boundaries;
    Alcotest.test_case "MFF boundary size W/k is large" `Quick
      test_mff_boundary_item_is_large;
  ]
  @ prop_tests
