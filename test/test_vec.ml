(* The vector layer: Vec/Vec.Scaled arithmetic, the DVBP engine, and
   the d=1 embedding — a scalar instance pushed through the vector
   engine must be bit-identical to the scalar engine (same packing,
   same cost, same trace bytes, same metrics) across every registry
   policy, with checkpoints resuming mid-run. *)

open Dbp_num
open Dbp_core
open Test_util

let vec = Alcotest.testable Vec.pp Vec.equal
let v l = Vec.make (List.map (fun (n, d) -> Rat.make n d) l)

(* ---- Vec arithmetic -------------------------------------------------- *)

let test_vec_basics () =
  let a = v [ (1, 2); (3, 4) ] and b = v [ (1, 4); (1, 4) ] in
  Alcotest.(check int) "dim" 2 (Vec.dim a);
  Alcotest.check vec "add" (v [ (3, 4); (1, 1) ]) (Vec.add a b);
  Alcotest.check vec "sub" (v [ (1, 4); (1, 2) ]) (Vec.sub a b);
  Alcotest.check vec "cmax" (v [ (1, 2); (3, 4) ]) (Vec.cmax a b);
  Alcotest.(check bool) "le yes" true (Vec.le b a);
  Alcotest.(check bool) "le no" false (Vec.le a b);
  Alcotest.(check bool) "le partial" false
    (Vec.le (v [ (1, 8); (7, 8) ]) a);
  check_rat "max_component" (r 3 4) (Vec.max_component a);
  check_rat "sum" (r 5 4) (Vec.sum a);
  Alcotest.(check int) "compare lex" (-1)
    (compare (Vec.compare (v [ (1, 2); (1, 4) ]) a) 0);
  Alcotest.check vec "truncate" (Vec.scalar (r 1 2)) (Vec.truncate a ~dims:1);
  Alcotest.check_raises "empty make"
    (Invalid_argument "Vec.make: empty component list") (fun () ->
      ignore (Vec.make []));
  Alcotest.check_raises "dim mismatch"
    (Invalid_argument "Vec.add: dimension mismatch (2 vs 1)") (fun () ->
      ignore (Vec.add a (Vec.scalar Rat.one)))

let test_vec_norms () =
  let capacity = v [ (2, 1); (1, 1) ] in
  let x = v [ (1, 1); (1, 4) ] in
  check_rat "max_norm" (r 1 2) (Vec.max_norm ~capacity x);
  check_rat "sum_norm" (r 3 4) (Vec.sum_norm ~capacity x);
  (* At d=1 both norms are level / capacity. *)
  let c1 = Vec.scalar (ri 2) and x1 = Vec.scalar (r 1 2) in
  check_rat "max_norm d1" (r 1 4) (Vec.max_norm ~capacity:c1 x1);
  check_rat "sum_norm d1" (r 1 4) (Vec.sum_norm ~capacity:c1 x1)

let test_vec_strings () =
  let a = v [ (1, 2); (-3, 4); (5, 1) ] in
  Alcotest.(check string) "to_string" "1/2,-3/4,5" (Vec.to_string a);
  Alcotest.check vec "round trip" a (Vec.of_string (Vec.to_string a));
  (* d=1 renders exactly like the scalar, so scalar trace payloads
     embed unchanged. *)
  Alcotest.(check string) "scalar render" (Rat.to_string (r 7 3))
    (Vec.to_string (Vec.scalar (r 7 3)));
  Alcotest.check_raises "empty" (Failure "Vec.of_string: empty string")
    (fun () -> ignore (Vec.of_string ""))

let test_scaled_round_trip () =
  let capacity = v [ (1, 1); (2, 1) ] in
  match Vec.Scaled.including (Vec.Scaled.base ~dims:2) capacity with
  | None -> Alcotest.fail "grid refused the capacity"
  | Some g -> (
      let g =
        match Vec.Scaled.including g (v [ (1, 6); (3, 10) ]) with
        | None -> Alcotest.fail "grid refused the sizes"
        | Some g -> g
      in
      let x = v [ (5, 6); (13, 10) ] in
      match Vec.Scaled.of_vec g x with
      | None -> Alcotest.fail "on-grid vector refused"
      | Some sx ->
          Alcotest.check vec "to_vec inverts of_vec" x (Vec.Scaled.to_vec g sx);
          (* Off-grid is refused, never rounded. *)
          Alcotest.(check bool) "off-grid refused" true
            (Vec.Scaled.of_vec g (v [ (1, 7); (1, 2) ]) = None);
          let y = v [ (1, 6); (7, 10) ] in
          let sy = Option.get (Vec.Scaled.of_vec g y) in
          Alcotest.check vec "add mirrors exact" (Vec.add x y)
            (Vec.Scaled.to_vec g (Vec.Scaled.add sx sy));
          Alcotest.check vec "sub mirrors exact" (Vec.sub x y)
            (Vec.Scaled.to_vec g (Vec.Scaled.sub sx sy));
          Alcotest.(check bool) "le mirrors exact" (Vec.le y x)
            (Vec.Scaled.le sy sx))

(* Mirror agreement under random on-grid vectors. *)
let scaled_agreement =
  QCheck2.Test.make ~count:500 ~name:"scaled ops agree with exact"
    QCheck2.Gen.(
      let comp = map (fun n -> Rat.make n 60) (int_range 0 240) in
      let vecgen d = map Vec.make (list_size (return d) comp) in
      int_range 1 4 >>= fun d -> pair (vecgen d) (vecgen d))
    (fun (a, b) ->
      let g =
        Option.get
          (Vec.Scaled.including
             (Option.get (Vec.Scaled.including (Vec.Scaled.base ~dims:(Vec.dim a)) a))
             b)
      in
      let sa = Option.get (Vec.Scaled.of_vec g a)
      and sb = Option.get (Vec.Scaled.of_vec g b) in
      Vec.equal (Vec.add a b) (Vec.Scaled.to_vec g (Vec.Scaled.add sa sb))
      && Vec.Scaled.le sa sb = Vec.le a b
      && Vec.Scaled.equal sa sb = Vec.equal a b)

(* ---- the d=1 embedding ---------------------------------------------- *)

let vec_of_packing_bin (b : Vec_simulator.bin_record) =
  ( b.Vec_simulator.vr_id,
    b.vr_tag,
    b.vr_capacity,
    b.vr_opened,
    b.vr_closed,
    b.vr_item_ids,
    b.vr_placements,
    b.vr_max_level )

let check_embedded ~what ?(compare_names = true) instance (vp : Vec_policy.t)
    (sp : Policy.t) =
  let sbuf = Buffer.create 4096 and vbuf = Buffer.create 4096 in
  let smet = Dbp_obs.Metrics.create () and vmet = Dbp_obs.Metrics.create () in
  let scalar =
    Simulator.run ~audit:true ~sink:(Dbp_obs.Sink.to_buffer sbuf) ~metrics:smet
      ~policy:sp instance
  in
  let vinst = Vec_instance.of_scalar instance in
  let vector =
    Vec_simulator.run ~audit:true ~sink:(Dbp_obs.Sink.to_buffer vbuf)
      ~metrics:vmet ~policy:vp vinst
  in
  if compare_names then
    Alcotest.(check string)
      (what ^ ": policy name") scalar.Packing.policy_name
      vector.Vec_simulator.r_policy_name;
  check_rat (what ^ ": total cost") scalar.Packing.total_cost
    vector.Vec_simulator.r_total_cost;
  Alcotest.(check string)
    (what ^ ": cost string")
    (Rat.to_string scalar.Packing.total_cost)
    (Rat.to_string vector.r_total_cost);
  Alcotest.(check int) (what ^ ": max bins") scalar.Packing.max_bins
    vector.r_max_bins;
  Alcotest.(check int)
    (what ^ ": violations") scalar.Packing.any_fit_violations
    vector.r_any_fit_violations;
  Alcotest.(check (array int))
    (what ^ ": assignment") scalar.Packing.assignment vector.r_assignment;
  Alcotest.check step_fn (what ^ ": timeline") scalar.Packing.timeline
    vector.r_timeline;
  Alcotest.(check int)
    (what ^ ": bin count")
    (Array.length scalar.Packing.bins)
    (Array.length vector.r_bins);
  Array.iteri
    (fun i (sb : Packing.bin_record) ->
      let id, tag, capacity, opened, closed, item_ids, placements, max_level =
        vec_of_packing_bin vector.r_bins.(i)
      in
      Alcotest.(check int) (what ^ ": bin id") sb.Packing.bin_id id;
      Alcotest.(check string) (what ^ ": bin tag") sb.tag tag;
      Alcotest.check vec
        (what ^ ": bin capacity")
        (Vec.scalar sb.capacity) capacity;
      check_rat (what ^ ": bin opened") sb.opened opened;
      check_rat (what ^ ": bin closed") sb.closed closed;
      Alcotest.(check (list int)) (what ^ ": bin items") sb.item_ids item_ids;
      Alcotest.(check bool)
        (what ^ ": bin placements") true
        (List.length sb.placements = List.length placements
        && List.for_all2
             (fun (t1, i1) (t2, i2) -> Rat.equal t1 t2 && i1 = i2)
             sb.placements placements);
      Alcotest.check vec (what ^ ": bin peak") (Vec.scalar sb.max_level)
        max_level)
    scalar.Packing.bins;
  Alcotest.(check string)
    (what ^ ": trace bytes") (Buffer.contents sbuf) (Buffer.contents vbuf);
  Alcotest.(check bool)
    (what ^ ": metrics") true
    (Dbp_obs.Metrics.counters smet = Dbp_obs.Metrics.counters vmet
    && Dbp_obs.Metrics.gauges smet = Dbp_obs.Metrics.gauges vmet
    && List.length (Dbp_obs.Metrics.rat_sums smet)
       = List.length (Dbp_obs.Metrics.rat_sums vmet)
    && List.for_all2
         (fun (n1, r1) (n2, r2) -> String.equal n1 n2 && Rat.equal r1 r2)
         (Dbp_obs.Metrics.rat_sums smet)
         (Dbp_obs.Metrics.rat_sums vmet));
  match Vec_simulator.validate vector with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: vector validate: %s" what e

let embedding_seeds = [ 5L; 42L; 1234L ]

(* Every registry policy, lifted: the vector engine replays the scalar
   decisions, trace and metrics byte-for-byte. *)
let test_lifted_embedding () =
  List.iter
    (fun seed ->
      let instance =
        Dbp_workload.Generator.generate ~seed
          { Dbp_workload.Spec.default with Dbp_workload.Spec.count = 300 }
      in
      List.iter
        (fun (sp : Policy.t) ->
          check_embedded
            ~what:(Printf.sprintf "seed %Ld lifted %s" seed sp.Policy.name)
            instance (Vec_policy.lift_scalar sp) sp)
        (Algorithms.all ~seed ()))
    embedding_seeds

(* The native vector Any Fit family makes the scalar decisions at d=1
   (norms reduce to residual/W); only the policy name differs. *)
let test_native_twins () =
  let instance =
    Dbp_workload.Generator.generate ~seed:42L
      { Dbp_workload.Spec.default with Dbp_workload.Spec.count = 300 }
  in
  List.iter
    (fun (vp : Vec_policy.t) ->
      match vp.Vec_policy.scalar with
      | None -> ()
      | Some sp ->
          check_embedded ~compare_names:false
            ~what:(Printf.sprintf "native %s" vp.Vec_policy.name)
            instance vp sp)
    Vec_policy.all

(* QCheck: random instances, every policy, engines bit-identical. *)
let embedding_property =
  QCheck2.Test.make ~count:60 ~name:"d=1 vector run embeds scalar run"
    (instance_gen ~max_items:25 ())
    (fun instance ->
      List.iter
        (fun (sp : Policy.t) ->
          check_embedded
            ~what:("qcheck " ^ sp.Policy.name)
            instance
            (Vec_policy.lift_scalar sp)
            sp)
        (Algorithms.all ());
      true)

(* ---- genuinely multi-dimensional runs ------------------------------- *)

(* Hand-built d=2 instance: item 1 fits bin 0 on dimension 0 but not on
   dimension 1, so component-wise fitting must open a second bin. *)
let test_d2_componentwise_fit () =
  let capacity = v [ (1, 1); (1, 1) ] in
  let item ~id size arrival departure =
    {
      Vec_instance.id;
      size;
      arrival = ri arrival;
      departure = ri departure;
    }
  in
  let inst =
    Vec_instance.create ~capacity
      [
        item ~id:0 (v [ (1, 4); (3, 4) ]) 0 10;
        item ~id:1 (v [ (1, 4); (1, 2) ]) 1 10;
        item ~id:2 (v [ (1, 2); (1, 4) ]) 2 10;
      ]
  in
  let result =
    Vec_simulator.run ~audit:true ~policy:Vec_policy.first_fit inst
  in
  (* Item 1 needs 1/2 on dim 1 where bin 0 has only 1/4 left; item 2
     then fits bin 0 exactly. *)
  Alcotest.(check (array int)) "assignment" [| 0; 1; 0 |] result.r_assignment;
  Alcotest.(check int) "max bins" 2 result.r_max_bins;
  check_rat "cost" (ri 19) result.r_total_cost;
  (match Vec_simulator.validate result with
  | Ok () -> ()
  | Error e -> Alcotest.failf "validate: %s" e);
  Alcotest.check vec "peak bin 0"
    (v [ (3, 4); (1, 1) ])
    result.r_bins.(0).vr_max_level

let test_d2_norms_disagree () =
  (* A residual profile where the max and sum norms rank bins
     differently: residuals (1/2, 1/2) vs (3/5, 1/5).
     max: 1/2 < 3/5 picks the first; sum: 1 > 4/5 picks the second. *)
  let capacity = v [ (1, 1); (1, 1) ] in
  let item ~id size arrival departure =
    {
      Vec_instance.id;
      size;
      arrival = ri arrival;
      departure = ri departure;
    }
  in
  let inst =
    Vec_instance.create ~capacity
      [
        item ~id:0 (v [ (1, 2); (1, 2) ]) 0 10;
        item ~id:1 (v [ (2, 5); (4, 5) ]) 0 10;
        item ~id:2 (v [ (1, 20); (1, 10) ]) 1 10;
      ]
  in
  let run p = (Vec_simulator.run ~audit:true ~policy:p inst).r_assignment in
  Alcotest.(check (array int))
    "best-fit:max" [| 0; 1; 0 |]
    (run (Vec_policy.best_fit Vec_policy.Max));
  Alcotest.(check (array int))
    "best-fit:sum" [| 0; 1; 1 |]
    (run (Vec_policy.best_fit Vec_policy.Sum))

let d2_instance_gen_static seed =
  let rng = Dbp_rand.Splitmix64.create seed in
  let items =
    List.init 120 (fun id ->
        let comp () = Rat.make (1 + Dbp_rand.Splitmix64.next_int rng 40) 40 in
        let arrival = Rat.make (Dbp_rand.Splitmix64.next_int rng 200) 4 in
        let dur = Rat.add Rat.one (Rat.make (Dbp_rand.Splitmix64.next_int rng 16) 4) in
        {
          Vec_instance.id;
          size = Vec.make [ comp (); comp () ];
          arrival;
          departure = Rat.add arrival dur;
        })
  in
  Vec_instance.create ~capacity:(Vec.ones ~dims:2) items

(* The exact engine and the mirrored engine agree bin-for-bin. *)
let test_mirror_vs_exact () =
  let inst = d2_instance_gen_static 77L in
  List.iter
    (fun (vp : Vec_policy.t) ->
      let mirrored = Vec_simulator.run ~policy:vp inst in
      let exact = Vec_simulator.run ~grid:None ~policy:vp inst in
      check_rat
        (vp.Vec_policy.name ^ ": cost")
        mirrored.r_total_cost exact.r_total_cost;
      Alcotest.(check (array int))
        (vp.Vec_policy.name ^ ": assignment")
        mirrored.r_assignment exact.r_assignment)
    Vec_policy.all

(* ---- checkpointing --------------------------------------------------- *)

(* Freeze mid-run, thaw, replay the tail: identical to the
   uninterrupted run; freeze of the thawed engine equals the image. *)
let test_checkpoint_resume () =
  let inst = d2_instance_gen_static 99L in
  List.iter
    (fun (vp : Vec_policy.t) ->
      let whole = Vec_simulator.run ~audit:true ~policy:vp inst in
      let events = Vec_instance.sorted_events inst in
      let cut = Array.length events / 2 in
      let eng =
        Vec_simulator.Online.create ~audit:true ~policy:vp
          ~capacity:(Vec_instance.capacity inst) ()
      in
      Array.iteri
        (fun i ev -> if i < cut then Vec_simulator.apply_event eng ev)
        events;
      let image = Vec_simulator.Online.freeze eng in
      let eng2 = Vec_simulator.Online.thaw ~audit:true ~policy:vp image in
      Alcotest.(check bool)
        (vp.Vec_policy.name ^ ": refreeze equals image")
        true
        (Vec_simulator.Online.freeze eng2 = image);
      Array.iteri
        (fun i ev -> if i >= cut then Vec_simulator.apply_event eng2 ev)
        events;
      let resumed = Vec_simulator.Online.finish eng2 ~instance:inst in
      check_rat
        (vp.Vec_policy.name ^ ": resumed cost")
        whole.r_total_cost resumed.r_total_cost;
      Alcotest.(check (array int))
        (vp.Vec_policy.name ^ ": resumed assignment")
        whole.r_assignment resumed.r_assignment;
      Alcotest.check step_fn
        (vp.Vec_policy.name ^ ": resumed timeline")
        whole.r_timeline resumed.r_timeline)
    Vec_policy.all

(* Vector snapshots: dbp-checkpoint/2 serialisation round-trips, the
   resumed run is bit-identical (driver-level verify), and inspect
   summarises without an instance. *)
let test_vector_snapshot () =
  let inst = d2_instance_gen_static 13L in
  let total = Array.length (Vec_instance.sorted_events inst) in
  List.iter
    (fun at ->
      let snap =
        Dbp_checkpoint.Checkpoint.save_vector_at ~policy_name:"best-fit:sum"
          ~at inst
      in
      let text = Dbp_checkpoint.Snapshot.to_string snap in
      Alcotest.(check bool)
        (Printf.sprintf "at %d: schema v2" at)
        true
        (String.length text > 30
        && String.sub text 0 30 = "{\"schema\":\"dbp-checkpoint/2\",\"");
      (match Dbp_checkpoint.Snapshot.of_string text with
      | Error e -> Alcotest.failf "at %d: parse failed: %s" at e
      | Ok snap2 ->
          Alcotest.(check string)
            (Printf.sprintf "at %d: byte round trip" at)
            text
            (Dbp_checkpoint.Snapshot.to_string snap2);
          let v = Dbp_checkpoint.Checkpoint.verify_vector inst snap2 in
          if not v.Dbp_checkpoint.Checkpoint.ok then
            Alcotest.failf "at %d: verify: %s" at
              (String.concat "; " v.mismatches));
      let summary = Dbp_checkpoint.Checkpoint.inspect snap in
      Alcotest.(check bool)
        (Printf.sprintf "at %d: inspect names the kind" at)
        true
        (String.length summary > 0))
    [ 0; total / 3; total ]

let suite =
  [
    Alcotest.test_case "vec basics" `Quick test_vec_basics;
    Alcotest.test_case "vec norms" `Quick test_vec_norms;
    Alcotest.test_case "vec strings" `Quick test_vec_strings;
    Alcotest.test_case "scaled round trip" `Quick test_scaled_round_trip;
    QCheck_alcotest.to_alcotest scaled_agreement;
    Alcotest.test_case "lifted embedding" `Quick test_lifted_embedding;
    Alcotest.test_case "native twins" `Quick test_native_twins;
    QCheck_alcotest.to_alcotest embedding_property;
    Alcotest.test_case "d2 componentwise fit" `Quick test_d2_componentwise_fit;
    Alcotest.test_case "d2 norms disagree" `Quick test_d2_norms_disagree;
    Alcotest.test_case "mirror vs exact" `Quick test_mirror_vs_exact;
    Alcotest.test_case "checkpoint resume" `Quick test_checkpoint_resume;
    Alcotest.test_case "vector snapshot" `Quick test_vector_snapshot;
  ]
