(* The observability layer: NDJSON trace round-trips, engine traces
   that validate against the schema, bit-identity of traced runs,
   metrics aggregates vs brute force, and profile span bookkeeping. *)

open Dbp_num
open Dbp_core
open Dbp_obs
open Test_util

(* ---- trace event round-trips ---------------------------------------- *)

let all_kinds =
  [
    Trace_event.Arrive { item = 3; size = r 4911 10000 };
    Trace_event.Pack { item = 3; bin = 1; level = r 1 2; residual = r 1 2 };
    Trace_event.Depart { item = 3; bin = 1; held = r 7 3 };
    Trace_event.Bin_open { bin = 1; tag = "ff"; capacity = Rat.one };
    Trace_event.Bin_close { bin = 1; opened = Rat.zero; cost = r 9 4 };
    Trace_event.Fail_bin { bin = 1; victims = 2; lost_level = r 5 6 };
    Trace_event.Retry { item = 3; attempt = 2 };
    Trace_event.Shed { item = 3 };
    Trace_event.Resume { item = 3; latency = r 1 4 };
  ]

let test_ndjson_round_trip () =
  List.iteri
    (fun i kind ->
      let ev = { Trace_event.seq = i; time = r (i + 1) 3; kind } in
      let line = Trace_event.to_ndjson ev in
      match Trace_event.of_ndjson line with
      | Ok back ->
          Alcotest.(check bool)
            (Printf.sprintf "%s round-trips" (Trace_event.kind_name kind))
            true (back = ev)
      | Error msg ->
          Alcotest.failf "%s failed to parse back: %s" line msg)
    all_kinds

let test_ndjson_rejects_malformed () =
  let bad =
    [
      "{\"seq\":0,\"t\":\"1\",\"kind\":\"arrive\",\"item\":0}" (* missing size *);
      "{\"seq\":0,\"t\":\"1\",\"kind\":\"arrive\",\"item\":0,\"size\":\"1/2\",\"x\":1}"
      (* unknown key *);
      "{\"seq\":0,\"t\":\"1\",\"kind\":\"nope\",\"item\":0}" (* unknown kind *);
      "{\"seq\":0,\"seq\":1,\"t\":\"1\",\"kind\":\"shed\",\"item\":0}"
      (* duplicate key *);
      "{\"seq\":0,\"t\":\"1/0\",\"kind\":\"shed\",\"item\":0}" (* bad rational *);
      "{\"seq\":0,\"t\":\"1\",\"kind\":\"shed\",\"item\":\"x\"}" (* wrong type *);
      "{\"seq\":0,\"t\":\"1\",\"kind\":\"shed\",\"item\":0} trailing";
      "not json at all";
    ]
  in
  List.iter
    (fun line ->
      match Trace_event.of_ndjson line with
      | Ok _ -> Alcotest.failf "accepted malformed line: %s" line
      | Error _ -> ())
    bad

let test_parse_all_sequencing () =
  let ev seq time kind = { Trace_event.seq; time; kind } in
  let shed = Trace_event.Shed { item = 0 } in
  let doc evs =
    String.concat "" (List.map (fun e -> Trace_event.to_ndjson e ^ "\n") evs)
  in
  (match Trace_event.parse_all (doc [ ev 0 Rat.zero shed; ev 1 Rat.one shed ]) with
  | Ok evs -> Alcotest.(check int) "two events" 2 (List.length evs)
  | Error msg -> Alcotest.failf "valid doc rejected: %s" msg);
  (match Trace_event.parse_all (doc [ ev 0 Rat.zero shed; ev 2 Rat.one shed ]) with
  | Ok _ -> Alcotest.fail "seq gap accepted"
  | Error msg ->
      Alcotest.(check bool) "gap error names line 2" true
        (contains ~sub:"line 2" msg));
  match Trace_event.parse_all (doc [ ev 0 Rat.one shed; ev 1 Rat.zero shed ]) with
  | Ok _ -> Alcotest.fail "time decrease accepted"
  | Error _ -> ()

(* ---- engine traces --------------------------------------------------- *)

let generate n seed =
  Dbp_workload.Generator.generate ~seed
    { Dbp_workload.Spec.default with Dbp_workload.Spec.count = n }

let traced_run ~policy instance =
  let buf = Buffer.create 4096 in
  let sink = Sink.to_buffer buf in
  let packing = Simulator.run ~sink ~policy instance in
  (packing, Buffer.contents buf, Sink.emitted sink)

let count_kind evs name =
  List.length
    (List.filter
       (fun (e : Trace_event.t) -> Trace_event.kind_name e.kind = name)
       evs)

let test_engine_trace_validates () =
  let instance = generate 120 11L in
  List.iter
    (fun policy ->
      let packing, body, emitted = traced_run ~policy instance in
      match Trace_event.parse_all body with
      | Error msg ->
          Alcotest.failf "%s trace invalid: %s" policy.Policy.name msg
      | Ok evs ->
          Alcotest.(check int) "every emission is a line" emitted
            (List.length evs);
          let n = Instance.size instance in
          Alcotest.(check int) "one arrive per item" n (count_kind evs "arrive");
          Alcotest.(check int) "one pack per item" n (count_kind evs "pack");
          Alcotest.(check int) "one depart per item" n (count_kind evs "depart");
          let bins = Packing.bins_used packing in
          Alcotest.(check int) "one open per bin" bins
            (count_kind evs "bin_open");
          Alcotest.(check int) "one close per bin" bins
            (count_kind evs "bin_close");
          (* the traced bin_close costs must sum to the exact objective *)
          let close_cost =
            Rat.sum
              (List.filter_map
                 (fun (e : Trace_event.t) ->
                   match e.Trace_event.kind with
                   | Trace_event.Bin_close { cost; _ } -> Some cost
                   | _ -> None)
                 evs)
          in
          check_rat "bin_close costs sum to total cost"
            packing.Packing.total_cost close_cost)
    (Algorithms.all ())

let test_traced_run_bit_identical () =
  let instance = generate 200 12L in
  List.iter
    (fun policy ->
      let traced, _, _ = traced_run ~policy instance in
      let metrics = Metrics.create () in
      let profile = Profile.create () in
      let metered = Simulator.run ~metrics ~profile ~policy instance in
      let plain = Simulator.run ~policy instance in
      check_rat
        (policy.Policy.name ^ ": traced cost identical")
        plain.Packing.total_cost traced.Packing.total_cost;
      Alcotest.(check bool)
        (policy.Policy.name ^ ": traced assignment identical")
        true
        (traced.Packing.assignment = plain.Packing.assignment);
      check_rat
        (policy.Policy.name ^ ": metered cost identical")
        plain.Packing.total_cost metered.Packing.total_cost;
      Alcotest.(check bool)
        (policy.Policy.name ^ ": metered assignment identical")
        true
        (metered.Packing.assignment = plain.Packing.assignment))
    (Algorithms.all ())

let test_injector_trace () =
  let instance = generate 150 13L in
  let horizon = Dbp_num.Interval.hi (Instance.packing_period instance) in
  let plan =
    Dbp_faults.Fault_plan.poisson_crashes ~seed:13L ~rate:2.0 ~horizon
  in
  let config =
    { Dbp_faults.Injector.default_config with
      Dbp_faults.Injector.launch_failure_prob = 0.2;
      max_pending = Some 3 }
  in
  let buf = Buffer.create 4096 in
  let sink = Sink.to_buffer buf in
  let metrics = Metrics.create () in
  let r =
    Dbp_faults.Injector.run ~sink ~metrics ~config ~plan
      ~policy:First_fit.policy instance
  in
  let res = r.Dbp_faults.Injector.resilience in
  match Trace_event.parse_all (Buffer.contents buf) with
  | Error msg -> Alcotest.failf "injector trace invalid: %s" msg
  | Ok evs ->
      Alcotest.(check int) "fail_bin events = faults injected"
        res.Dbp_faults.Resilience.faults_injected
        (count_kind evs "fail_bin");
      Alcotest.(check int) "retry events = retries counter"
        res.Dbp_faults.Resilience.retries (count_kind evs "retry");
      Alcotest.(check int) "resume events = resumed counter"
        res.Dbp_faults.Resilience.resumed_sessions
        (count_kind evs "resume");
      Alcotest.(check int) "shed events = shed + lost"
        (res.Dbp_faults.Resilience.shed_requests
        + res.Dbp_faults.Resilience.lost_sessions)
        (count_kind evs "shed");
      Alcotest.(check int) "metrics retries counter agrees"
        res.Dbp_faults.Resilience.retries (Metrics.counter metrics "retries");
      Alcotest.(check int) "metrics bin_failures counter agrees"
        res.Dbp_faults.Resilience.faults_injected
        (Metrics.counter metrics "bin_failures")

(* ---- metrics --------------------------------------------------------- *)

let test_metrics_registry () =
  let instance = generate 100 14L in
  let metrics = Metrics.create () in
  let packing = Simulator.run ~metrics ~policy:First_fit.policy instance in
  let n = Instance.size instance in
  Alcotest.(check int) "arrivals" n (Metrics.counter metrics "arrivals");
  Alcotest.(check int) "departures" n (Metrics.counter metrics "departures");
  Alcotest.(check int) "bins opened" (Packing.bins_used packing)
    (Metrics.counter metrics "bins_opened");
  Alcotest.(check int) "bins closed" (Packing.bins_used packing)
    (Metrics.counter metrics "bins_closed");
  Alcotest.(check int) "all bins closed at the end" 0
    (match Metrics.gauge metrics "open_bins" with Some g -> g | None -> -1);
  (* the exact rational sum is the MinTotal objective, bit for bit *)
  (match Metrics.rat_sum metrics "bin_seconds" with
  | Some s -> check_rat "bin_seconds = total cost" packing.Packing.total_cost s
  | None -> Alcotest.fail "bin_seconds sum missing");
  (* incrementally maintained aggregates vs brute force over the raw
     observations, for every histogram *)
  List.iter
    (fun (name, data) ->
      match Metrics.hist_aggregates metrics name with
      | None -> Alcotest.failf "aggregates missing for %s" name
      | Some agg ->
          Alcotest.(check int)
            (name ^ ": count") (Array.length data)
            agg.Metrics.agg_count;
          Alcotest.(check (float 1e-9))
            (name ^ ": sum")
            (Array.fold_left ( +. ) 0.0 data)
            agg.Metrics.agg_sum;
          Alcotest.(check (float 0.0))
            (name ^ ": min")
            (Array.fold_left Float.min infinity data)
            agg.Metrics.agg_min;
          Alcotest.(check (float 0.0))
            (name ^ ": max")
            (Array.fold_left Float.max neg_infinity data)
            agg.Metrics.agg_max)
    (Metrics.histograms metrics);
  Alcotest.(check int) "one utilisation observation per pack" n
    (match Metrics.observations metrics "utilisation_at_pack" with
    | Some a -> Array.length a
    | None -> -1)

let test_metrics_empty () =
  let m = Metrics.create () in
  Alcotest.(check bool) "fresh registry is empty" true (Metrics.is_empty m);
  Alcotest.(check int) "unknown counter reads 0" 0 (Metrics.counter m "nope");
  Alcotest.(check bool) "unknown histogram" true
    (Metrics.observations m "nope" = None);
  Metrics.incr m "x";
  Alcotest.(check bool) "no longer empty" false (Metrics.is_empty m)

(* ---- profile --------------------------------------------------------- *)

let test_profile_spans () =
  let instance = generate 80 15L in
  let profile = Profile.create () in
  ignore (Simulator.run ~profile ~policy:Best_fit.policy instance);
  let spans = Profile.spans profile in
  let n = Instance.size instance in
  List.iter
    (fun phase ->
      match List.find_opt (fun (p, _, _) -> p = phase) spans with
      | None -> Alcotest.failf "phase %s missing from profile" phase
      | Some (_, seconds, calls) ->
          Alcotest.(check bool) (phase ^ ": non-negative time") true
            (seconds >= 0.0);
          (* Arrivals and departures both cross the commit phase, but
             a policy without a departure handler skips views/policy on
             departures entirely — so those two phases tick once per
             item, commit twice. *)
          let expected = if phase = "commit" then 2 * n else n in
          Alcotest.(check int) (phase ^ ": calls") expected calls)
    [ "views"; "policy"; "commit" ];
  Alcotest.(check bool) "total = sum of spans" true
    (Float.abs
       (Profile.total profile
       -. List.fold_left (fun acc (_, s, _) -> acc +. s) 0.0 spans)
    < 1e-9);
  Profile.reset profile;
  Alcotest.(check int) "reset clears spans" 0
    (List.length (Profile.spans profile))

let test_sink_null_counts () =
  let sink = Sink.null () in
  Sink.emit sink ~time:Rat.zero (Trace_event.Shed { item = 0 });
  Sink.emit sink ~time:Rat.one (Trace_event.Shed { item = 1 });
  Alcotest.(check int) "null sink still counts sequence" 2 (Sink.emitted sink)

(* ---- property: random event streams round-trip ----------------------- *)

let kind_gen =
  QCheck2.Gen.(
    let pos = map2 (fun n d -> Rat.make n d) (int_range 0 50) (int_range 1 9) in
    oneof
      [
        map2 (fun i s -> Trace_event.Arrive { item = i; size = s })
          (int_range 0 999) pos;
        map3
          (fun i b l ->
            Trace_event.Pack { item = i; bin = b; level = l; residual = l })
          (int_range 0 999) (int_range 0 99) pos;
        map2 (fun i a -> Trace_event.Retry { item = i; attempt = a })
          (int_range 0 999) (int_range 0 9);
        map (fun i -> Trace_event.Shed { item = i }) (int_range 0 999);
        map3
          (fun b t c ->
            Trace_event.Bin_open { bin = b; tag = t; capacity = c })
          (int_range 0 99)
          (string_size ~gen:printable (int_range 0 8))
          pos;
      ])

(* ---- incremental feed: partial reads, missing final newline --------- *)

let feed_doc_events () =
  List.mapi
    (fun i kind -> { Trace_event.seq = i; time = Rat.of_int i; kind })
    [
      Trace_event.Arrive { item = 0; size = r 1 3 };
      Trace_event.Pack { item = 0; bin = 0; level = r 1 3; residual = r 2 3 };
      Trace_event.Shed { item = 1 };
      Trace_event.Retry { item = 1; attempt = 1 };
      Trace_event.Depart { item = 0; bin = 0; held = r 5 2 };
    ]

let test_feed_split_at_every_byte () =
  (* A valid stream must parse identically however the transport
     fragments it: split the document at every byte boundary and feed
     the two halves separately. *)
  let evs = feed_doc_events () in
  let doc =
    String.concat "" (List.map (fun e -> Trace_event.to_ndjson e ^ "\n") evs)
  in
  for cut = 0 to String.length doc do
    let feed = Trace_event.Feed.create () in
    let got = ref [] in
    let push chunk =
      match Trace_event.Feed.feed feed chunk with
      | Ok es -> got := !got @ es
      | Error e ->
          Alcotest.failf "split at %d: %s" cut
            (Trace_event.stream_error_to_string e)
    in
    push (String.sub doc 0 cut);
    push (String.sub doc cut (String.length doc - cut));
    (match Trace_event.Feed.close feed with
    | Ok es -> got := !got @ es
    | Error e ->
        Alcotest.failf "close after split at %d: %s" cut
          (Trace_event.stream_error_to_string e));
    if !got <> evs then Alcotest.failf "split at %d reordered events" cut
  done

let test_feed_final_line_without_newline () =
  let evs = feed_doc_events () in
  let doc =
    String.concat "\n" (List.map Trace_event.to_ndjson evs)
    (* no trailing newline *)
  in
  let feed = Trace_event.Feed.create () in
  let first =
    match Trace_event.Feed.feed feed doc with
    | Ok es -> es
    | Error e -> Alcotest.failf "%s" (Trace_event.stream_error_to_string e)
  in
  Alcotest.(check int) "terminated lines parse eagerly"
    (List.length evs - 1) (List.length first);
  match Trace_event.Feed.close feed with
  | Ok [ last ] ->
      Alcotest.(check bool) "final unterminated line parses" true
        (last = List.nth evs (List.length evs - 1))
  | Ok other -> Alcotest.failf "close returned %d events" (List.length other)
  | Error e -> Alcotest.failf "%s" (Trace_event.stream_error_to_string e)

let test_feed_reports_byte_offsets () =
  let feed = Trace_event.Feed.create () in
  let good = {|{"seq":0,"t":"1","kind":"shed","item":4}|} ^ "\n" in
  (match Trace_event.Feed.feed feed good with
  | Ok [ _ ] -> ()
  | Ok _ | Error _ -> Alcotest.fail "good line should parse");
  (* Deliver the bad line in two fragments so the reported offset must
     come from stream accounting, not the chunk. *)
  (match Trace_event.Feed.feed feed "not js" with
  | Ok [] -> ()
  | Ok _ | Error _ -> Alcotest.fail "partial line should stay buffered");
  match Trace_event.Feed.feed feed "on\n" with
  | Ok _ -> Alcotest.fail "malformed line should fail"
  | Error e ->
      Alcotest.(check int) "line number" 2 e.Trace_event.line;
      Alcotest.(check int) "byte offset of the offending line"
        (String.length good) e.Trace_event.byte;
      (* Poisoned: later feeds keep failing with the same error. *)
      (match Trace_event.Feed.feed feed good with
      | Ok _ -> Alcotest.fail "feed should stay poisoned"
      | Error e' -> Alcotest.(check int) "same byte" e.Trace_event.byte
            e'.Trace_event.byte);
      Alcotest.(check int) "bytes_consumed stops at the bad line"
        (String.length good)
        (Trace_event.Feed.bytes_consumed feed)

let prop_feed_fragmentation =
  qcheck ~count:200 "feed is fragmentation-invariant"
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 12) kind_gen)
        (list_size (int_range 1 8) (int_range 1 30)))
    (fun (kinds, cuts) ->
      let evs =
        List.mapi
          (fun i kind -> { Trace_event.seq = i; time = Rat.of_int i; kind })
          kinds
      in
      let doc =
        String.concat ""
          (List.map (fun e -> Trace_event.to_ndjson e ^ "\n") evs)
      in
      let feed = Trace_event.Feed.create () in
      let got = ref [] in
      let ok = ref true in
      let push s =
        match Trace_event.Feed.feed feed s with
        | Ok es -> got := !got @ es
        | Error _ -> ok := false
      in
      let n = String.length doc in
      let pos = ref 0 in
      List.iter
        (fun w ->
          if !pos < n then begin
            let w = min w (n - !pos) in
            push (String.sub doc !pos w);
            pos := !pos + w
          end)
        cuts;
      if !pos < n then push (String.sub doc !pos (n - !pos));
      (match Trace_event.Feed.close feed with
      | Ok es -> got := !got @ es
      | Error _ -> ok := false);
      !ok && !got = evs
      && Trace_event.Feed.bytes_consumed feed = String.length doc)

let prop_tests =
  [
    prop_feed_fragmentation;
    qcheck ~count:300 "random events survive NDJSON round-trip"
      QCheck2.Gen.(list_size (int_range 0 20) kind_gen)
      (fun kinds ->
        let evs =
          List.mapi
            (fun i kind -> { Trace_event.seq = i; time = Rat.of_int i; kind })
            kinds
        in
        let doc =
          String.concat ""
            (List.map (fun e -> Trace_event.to_ndjson e ^ "\n") evs)
        in
        match Trace_event.parse_all doc with
        | Ok back -> back = evs
        | Error _ -> false);
  ]

let suite =
  [
    Alcotest.test_case "ndjson round trip" `Quick test_ndjson_round_trip;
    Alcotest.test_case "ndjson rejects malformed" `Quick
      test_ndjson_rejects_malformed;
    Alcotest.test_case "parse_all sequencing" `Quick test_parse_all_sequencing;
    Alcotest.test_case "feed split at every byte" `Quick
      test_feed_split_at_every_byte;
    Alcotest.test_case "feed final line without newline" `Quick
      test_feed_final_line_without_newline;
    Alcotest.test_case "feed reports byte offsets" `Quick
      test_feed_reports_byte_offsets;
    Alcotest.test_case "engine trace validates" `Quick
      test_engine_trace_validates;
    Alcotest.test_case "traced run bit-identical" `Quick
      test_traced_run_bit_identical;
    Alcotest.test_case "injector trace" `Quick test_injector_trace;
    Alcotest.test_case "metrics registry" `Quick test_metrics_registry;
    Alcotest.test_case "metrics empty" `Quick test_metrics_empty;
    Alcotest.test_case "profile spans" `Quick test_profile_spans;
    Alcotest.test_case "null sink counts" `Quick test_sink_null_counts;
  ]
  @ prop_tests
