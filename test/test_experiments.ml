(* Smoke tests for the experiment registry: every experiment is
   resolvable, and the fast ones run end-to-end with zero failed
   checks.  (The full battery runs in bench/main.exe and the CLI.) *)

open Dbp_experiments

let test_registry_complete () =
  Alcotest.(check int) "twenty-one experiments" 21
    (List.length Registry.all_names);
  List.iter
    (fun n ->
      if not (List.mem n Registry.all_names) then
        Alcotest.failf "missing experiment %s" n)
    [ "E1"; "E2"; "E3"; "E4"; "E5"; "E6"; "E7"; "E8"; "E9"; "E10"; "E11";
      "E12"; "E13"; "E14"; "E15"; "E16"; "E17"; "E18"; "E19"; "E20"; "E21" ];
  Alcotest.(check bool) "unknown name" true (Registry.run "E99" = None)

let run_clean name =
  match Registry.run name with
  | None -> Alcotest.failf "experiment %s not found" name
  | Some o ->
      Alcotest.(check int)
        (name ^ " failed checks")
        0 o.Exp_common.checks_failed;
      Alcotest.(check bool)
        (name ^ " has artefacts")
        true
        (o.Exp_common.tables <> [] && o.Exp_common.checks_total > 0);
      List.iter
        (fun t ->
          if Dbp_analysis.Table.row_count t = 0 then
            Alcotest.failf "%s produced an empty table" name)
        o.Exp_common.tables

let test_e1 () = run_clean "e1"
let test_e3 () = run_clean "E3"
let test_e10 () = run_clean "e10"
let test_e16 () = run_clean "e16"
let test_e18 () = run_clean "e18"
let test_e19 () = run_clean "e19"

let test_render_outcome () =
  match Registry.run "e1" with
  | None -> Alcotest.fail "e1 missing"
  | Some o ->
      let rendered = Exp_common.render_outcome o in
      Alcotest.(check bool) "has verdict line" true
        (Test_util.contains ~sub:"checks passed" rendered);
      Alcotest.(check bool) "has table" true
        (Test_util.contains ~sub:"measured ratio" rendered)

(* A worker exception must surface as the original exception promptly
   after the parallel section, not vanish or arrive as a Domain.join
   artefact — and identically whether the fan-out is parallel or
   sequential. *)
let test_run_list_reraises_worker_failure () =
  List.iter
    (fun domains ->
      let jobs =
        List.init 8 (fun i () ->
            if i = 5 then failwith "job-5-exploded" else i * i)
      in
      match Registry.run_list ~domains jobs with
      | _ -> Alcotest.failf "domains:%d swallowed the failure" domains
      | exception Failure msg ->
          Alcotest.(check string)
            (Printf.sprintf "domains:%d original exception" domains)
            "job-5-exploded" msg)
    [ 1; 3 ];
  (* And a clean list still returns results in input order. *)
  Alcotest.(check (list int)) "clean run ordered" [ 0; 1; 4; 9 ]
    (Registry.run_list ~domains:3 (List.init 4 (fun i () -> i * i)))

let suite =
  [
    Alcotest.test_case "registry complete" `Quick test_registry_complete;
    Alcotest.test_case "run_list re-raises worker failure" `Quick
      test_run_list_reraises_worker_failure;
    Alcotest.test_case "E1 clean" `Slow test_e1;
    Alcotest.test_case "E3 clean" `Slow test_e3;
    Alcotest.test_case "E10 clean" `Slow test_e10;
    Alcotest.test_case "E16 clean" `Slow test_e16;
    Alcotest.test_case "E18 clean" `Slow test_e18;
    Alcotest.test_case "E19 clean" `Slow test_e19;
    Alcotest.test_case "render outcome" `Quick test_render_outcome;
  ]
