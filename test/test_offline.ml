open Dbp_num
open Dbp_core
open Dbp_offline
open Test_util

let mk ?(size = r 1 2) a d =
  Item.make ~id:0 ~size ~arrival:(ri a) ~departure:(ri d)

let inst items = Instance.create ~capacity:Rat.one items

(* ---- Group ------------------------------------------------------------ *)

let test_group_basics () =
  let g = Group.empty ~capacity:Rat.one in
  check_rat "empty span" Rat.zero (Group.span g);
  check_rat "empty peak" Rat.zero (Group.peak_load g);
  let a = mk 0 2 and b = mk ~size:(r 1 4) 1 3 in
  let g = Group.add g a in
  check_rat "span after one" (ri 2) (Group.span g);
  Alcotest.(check bool) "b fits" true (Group.fits g b);
  let g = Group.add g b in
  check_rat "span union" (ri 3) (Group.span g);
  check_rat "peak" (r 3 4) (Group.peak_load g);
  Alcotest.(check int) "size" 2 (Group.size g)

let test_group_capacity () =
  let g = Group.of_items ~capacity:Rat.one [ mk ~size:(r 3 5) 0 2 ] in
  let conflicting = mk ~size:(r 3 5) 1 3 in
  Alcotest.(check bool) "conflict rejected" false (Group.fits g conflicting);
  Alcotest.(check bool) "add raises" true
    (try
       ignore (Group.add g conflicting);
       false
     with Invalid_argument _ -> true);
  (* No temporal overlap: fits despite the sizes. *)
  let later = mk ~size:(r 3 5) 3 4 in
  Alcotest.(check bool) "disjoint in time fits" true (Group.fits g later);
  (* Touching intervals: item departs exactly when the next arrives. *)
  let touching = mk ~size:(r 3 5) 2 3 in
  Alcotest.(check bool) "touching fits (departure first)" true
    (Group.fits g touching)

let test_group_span_increase () =
  let g = Group.of_items ~capacity:Rat.one [ mk ~size:(r 1 4) 0 4 ] in
  check_rat "nested: no increase" Rat.zero
    (Group.span_increase g (mk ~size:(r 1 4) 1 3));
  check_rat "extension" (ri 2) (Group.span_increase g (mk ~size:(r 1 4) 3 6));
  check_rat "disjoint" (ri 2) (Group.span_increase g (mk ~size:(r 1 4) 6 8))

(* ---- heuristics -------------------------------------------------------- *)

let test_heuristics_partition () =
  let instance =
    inst
      [
        mk 0 4; mk ~size:(r 2 3) 1 3; mk ~size:(r 1 4) 2 6;
        mk 7 9; mk ~size:(r 1 3) 8 10;
      ]
  in
  List.iter
    (fun (name, run) ->
      let s = run instance in
      match Offline_heuristic.validate instance s with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s: %s" name msg)
    [
      ("ff-arrival", Offline_heuristic.first_fit_by_arrival);
      ("least-span", Offline_heuristic.least_span_increase);
      ("longest-first", Offline_heuristic.longest_first);
      ("best", Offline_heuristic.best);
    ]

let test_gap_bridging () =
  (* Two items far apart share a group offline; the cost is only their
     spans, not the gap. *)
  let instance = inst [ mk 0 1; mk 10 11 ] in
  let s = Offline_heuristic.first_fit_by_arrival instance in
  Alcotest.(check int) "one group" 1 (List.length s.Offline_heuristic.groups);
  check_rat "gap not billed" (ri 2) s.Offline_heuristic.cost

(* ---- exact ------------------------------------------------------------- *)

(* Ground truth: enumerate all partitions (n <= 7). *)
let brute_force instance =
  let capacity = Instance.capacity instance in
  let items = Array.to_list (Instance.items instance) in
  let best = ref None in
  let rec go groups = function
    | [] ->
        let cost = Rat.sum (List.map Group.span groups) in
        (match !best with
        | Some b when Rat.(b <= cost) -> ()
        | _ -> best := Some cost)
    | item :: rest ->
        List.iteri
          (fun j g ->
            if Group.fits g item then
              go
                (List.mapi (fun j' g' -> if j = j' then Group.add g' item else g')
                   groups)
                rest)
          groups;
        go (Group.add (Group.empty ~capacity) item :: groups) rest
  in
  go [] items;
  Option.get !best

let test_exact_simple () =
  (* fragmentation k=3, mu=4: offline non-migratory must keep the three
     long items in the three original bins?  No: offline can isolate
     the stragglers from the start: 3 bins for the bulk on [0,1] plus
     they hold a straggler each... actually offline puts all three
     stragglers in ONE group and fills two other groups: cost
     3*1 + (4-1) = 6?  Groups: g1 = {3 stragglers} span 4; the other 6
     short items need 2 more groups of volume 1 each: span 1 + 1 ->
     total 6. *)
  let instance = Dbp_workload.Patterns.fragmentation ~k:3 ~mu:(ri 4) in
  let result = Offline_exact.solve instance in
  Alcotest.(check bool) "exact" true result.Offline_exact.exact;
  check_rat "offline optimum 6" (ri 6) result.Offline_exact.upper;
  (* equals the repacking OPT here: no migration needed to be optimal *)
  let repack = Dbp_opt.Opt_total.compute instance in
  check_rat "matches repack OPT" (Dbp_opt.Opt_total.value_exn repack)
    result.Offline_exact.upper

let test_exact_budget () =
  let spec =
    Dbp_workload.Spec.with_target_mu
      { Dbp_workload.Spec.default with Dbp_workload.Spec.count = 40 }
      ~mu:6.0
  in
  let instance = Dbp_workload.Generator.generate ~seed:55L spec in
  match Offline_exact.solve ~node_budget:50 instance with
  | { Offline_exact.exact = false; lower; upper; _ } ->
      Alcotest.(check bool) "lower <= upper" true Rat.(lower <= upper)
  | { Offline_exact.exact = true; _ } ->
      Alcotest.fail "expected budget exhaustion"

let prop_tests =
  [
    qcheck ~count:120 "exact matches brute force (n <= 7)"
      (instance_gen ~max_items:7 ()) (fun instance ->
        let result = Offline_exact.solve instance in
        result.Offline_exact.exact
        && Rat.equal result.Offline_exact.upper (brute_force instance));
    qcheck ~count:60 "repack OPT <= offline OPT <= every heuristic"
      (instance_gen ~max_items:10 ()) (fun instance ->
        let repack = Dbp_opt.Opt_total.compute instance in
        let offline = Offline_exact.solve instance in
        let heur = Offline_heuristic.best instance in
        offline.Offline_exact.exact
        && Rat.(repack.Dbp_opt.Opt_total.lower <= offline.Offline_exact.upper)
        && Rat.(offline.Offline_exact.upper <= heur.Offline_heuristic.cost));
    qcheck ~count:60 "offline OPT <= every online policy"
      (instance_gen ~max_items:10 ()) (fun instance ->
        let offline = Offline_exact.solve instance in
        List.for_all
          (fun (p : Packing.t) ->
            Rat.(offline.Offline_exact.upper <= p.Packing.total_cost))
          (run_all_policies instance));
    qcheck ~count:100 "heuristic solutions always validate"
      (instance_gen ~max_items:30 ()) (fun instance ->
        List.for_all
          (fun s -> Offline_heuristic.validate instance s = Ok ())
          [
            Offline_heuristic.first_fit_by_arrival instance;
            Offline_heuristic.least_span_increase instance;
            Offline_heuristic.longest_first instance;
          ]);
    qcheck ~count:100 "group peak load is order-insensitive"
      (instance_gen ~max_items:8 ()) (fun instance ->
        (* adding items in any order to one group (when feasible)
           reports the same peak *)
        let items = Array.to_list (Instance.items instance) in
        let build order =
          List.fold_left
            (fun acc item ->
              match acc with
              | None -> None
              | Some g -> if Group.fits g item then Some (Group.add g item) else None)
            (Some (Group.empty ~capacity:Rat.one))
            order
        in
        match (build items, build (List.rev items)) with
        | Some g1, Some g2 ->
            Rat.equal (Group.peak_load g1) (Group.peak_load g2)
            && Rat.equal (Group.span g1) (Group.span g2)
        | _ -> true);
  ]

let suite =
  [
    Alcotest.test_case "group basics" `Quick test_group_basics;
    Alcotest.test_case "group capacity" `Quick test_group_capacity;
    Alcotest.test_case "group span increase" `Quick test_group_span_increase;
    Alcotest.test_case "heuristics partition" `Quick test_heuristics_partition;
    Alcotest.test_case "gap bridging" `Quick test_gap_bridging;
    Alcotest.test_case "exact on fragmentation" `Quick test_exact_simple;
    Alcotest.test_case "exact budget" `Quick test_exact_budget;
  ]
  @ prop_tests
