Integration tests for the dbp CLI.  Everything is seeded and exact, so
outputs are fully deterministic.

Generate a trace dense enough that policies differ:

  $ dbp generate --count 30 --mu 6 --seed 3 -o trace.csv
  wrote 30 items to trace.csv
  $ head -2 trace.csv
  # capacity=1
  id,size,arrival,departure

Simulate it with First Fit and measure the competitive ratio:

  $ dbp simulate --trace trace.csv --policy first-fit --ratio
  first_fit: 14 bins, cost=120481/2000 (60.2405), max open=6, any-fit violations=0
  cost at rate 1: 60.2405
  OPT_total = 19169/400
  competitive ratio: ratio=1.25704

Best Fit and MFF run on the same trace:

  $ dbp simulate --trace trace.csv --policy best-fit | head -1
  best_fit: 15 bins, cost=74557/1250 (59.6456), max open=6, any-fit violations=0
  $ dbp simulate --trace trace.csv --policy mff | head -1
  mff(k=8): 15 bins, cost=121327/2000 (60.6635), max open=6, any-fit violations=1

The OPT machinery and the paper's bounds:

  $ dbp opt --trace trace.csv
  instance: 30 items, W=1, mu=6, span=194883/10000, u(R)=3559358987/100000000
  bound (b.1) u(R)/W        = 35.5936
  bound (b.2) span(R)       = 19.4883
  segment lower bound       = 45.0676
  bound (b.3) sum len(I(r)) = 76.691
  OPT_total = 19169/400

The Theorem 1 adversary forces the exact closed-form ratio, for any
Any Fit policy:

  $ dbp adversary anyfit -k 4 --mu 6
  first_fit: 4 bins, cost=24 (24), max open=4, any-fit violations=0
  algorithm cost : 24
  OPT_total      : 9
  ratio          : 2.66667  (eq (1) predicts 2.66667; bound mu = 6)
  $ dbp adversary anyfit -k 4 --mu 6 --policy best-fit | tail -1
  ratio          : 2.66667  (eq (1) predicts 2.66667; bound mu = 6)

The Theorem 2 adversary drives Best Fit past k/2:

  $ dbp adversary bestfit -k 4 --mu 2 --iterations 3 | tail -1
  ratio          : 2.57471  (forced >= k/2 = 2)

The Section 4.3 decomposition checker accepts a real FF packing:

  $ dbp decompose --trace trace.csv | tail -2
  decomposition: 14 bins, 13 sub-periods, 2 joints + 0 singles + 9 non-intersecting = 11 charges; span=19.4883, left=40.7522, u(R)=35.5936; 0 violations
  all Section 4.3 checks passed

Offline (non-migratory) planning on the same trace:

  $ dbp offline --trace trace.csv
  online First Fit        : 60.2405
  offline FF by arrival   : 60.3136 (6 groups)
  least span increase     : 54.3457 (6 groups)
  longest first           : 54.081 (6 groups)

Dynamic Vector Bin Packing: the cloud-gaming titles carry a full
GPU/CPU/RAM/network profile, packed component-wise at any --dims
prefix.  --dims 1 is the paper's scalar GPU-only model:

  $ dbp dvbp --dims 2 --rate 12 --hours 4
  dvbp: 29 requests, d=2 (gpu+cpu), lower bound 11.2524
  first_fit: cost=29893/2000 (14.9465), max open=2, any-fit violations=0, vs LB 1.32829
  best_fit:max: cost=65793/5000 (13.1586), max open=2, any-fit violations=0, vs LB 1.1694
  best_fit:sum: cost=65793/5000 (13.1586), max open=2, any-fit violations=0, vs LB 1.1694
  worst_fit:max: cost=29893/2000 (14.9465), max open=2, any-fit violations=0, vs LB 1.32829
  worst_fit:sum: cost=29893/2000 (14.9465), max open=2, any-fit violations=0, vs LB 1.32829
  next_fit: cost=196507/10000 (19.6507), max open=4, any-fit violations=2, vs LB 1.74636
  $ dbp dvbp --dims 1 --policy best-fit --rate 12 --hours 4
  dvbp: 29 requests, d=1 (gpu), lower bound 11.2524
  best_fit:max: cost=65793/5000 (13.1586), max open=2, any-fit violations=0, vs LB 1.1694
  $ dbp dvbp --dims 5
  dvbp: --dims must be in 1..4
  [2]
  $ dbp dvbp --dims 2 --policy nope
  unknown vector policy nope (known: first-fit, best-fit:max, best-fit:sum, worst-fit:max, worst-fit:sum, next-fit)
  [2]

Fault injection: kill the fullest bin at t=5 and t=9 and watch Best
Fit recover.  Everything (plan, victims, restarts) is deterministic:

  $ dbp faults --trace trace.csv --policy best-fit --kill-fullest-at 5,9 --seed 5
  plan targeted-fullest: 2 faults over horizon [0, 19.5485]
  best_fit: 17 bins, cost=287851/5000 (57.5702), max open=6, any-fit violations=0
  faults          : 2 injected, 0 skipped
  interrupted     : 3 sessions, 2.4584 session-seconds displaced
  live-migrated   : 0 sessions, 0 volume
  recovered       : 3 resumed, 0 lost, 0 shed
  launch retries  : 0 failures, 0 retries
  recovery latency: mean 0.25, p95 0.25, max 0.25
  availability    : 0.99022 (served 75.941 / demanded 76.691)
  cost            : 57.5702 faulty vs 59.6456 fault-free (overhead 0.965204)

Malformed traces die with a readable diagnostic, not a backtrace:

  $ printf '# capacity=1\nid,size,arrival,departure\n0,1/2,0,oops\n' > bad.csv
  $ dbp simulate --trace bad.csv
  bad.csv: trace parse error at line 3 (field 'departure'): 'oops' is not a rational number
  [2]
  $ dbp faults --trace bad.csv
  bad.csv: trace parse error at line 3 (field 'departure'): 'oops' is not a rational number
  [2]

Unknown policies are rejected:

  $ dbp simulate --trace trace.csv --policy nope
  unknown policy nope (known: first-fit, best-fit, worst-fit, last-fit, next-fit, random-fit, mff, mff-known-mu, mff:<k>, harmonic:<m>)
  [2]

Trace statistics:

  $ dbp stats --trace trace.csv | head -5
  instance: 30 items, W=1, mu=6, span=194883/10000, u(R)=3559358987/100000000
  
  sizes    : 0.483 +- 0.082 [0.0068, 0.8945]
  durations: 2.556 +- 0.68 [1, 6]
  

Policy comparison:

  $ dbp diff --trace trace.csv -a first-fit -b next-fit | tail -1
  cost 60.2405 vs 60.5233 (gap -0.2828); bins 14 vs 21; first divergence at item 7; 33 pairs split, 6 joined

The scaling benchmark emits the perf-trajectory JSON.  Wall-clock
numbers vary run to run, so the checks stick to the deterministic
shape: the schema, the size grid, one fast row per policy and size
plus one naive row per policy, and — the real assertions — every
naive-vs-fast pair bit-identical, and (schema /3) every run cut at
its event midpoint and resumed from a checkpoint snapshot
bit-identical to the straight run:

  $ dbp bench --quick --json -o bench.json
  wrote bench.json
  $ grep -o '"schema": "[^"]*"' bench.json
  "schema": "dbp-bench-simulator/4"
  $ grep -o '"quick": [a-z]*' bench.json; grep -o '"sizes": \[[0-9, ]*\]' bench.json; grep -o '"naive_size": [0-9]*' bench.json
  "quick": true
  "sizes": [500, 2000]
  "naive_size": 500
  $ grep -c '"engine": "fast"' bench.json; grep -c '"engine": "naive"' bench.json
  16
  8
  $ grep -c '"identical": true' bench.json; grep -c '"identical": false' bench.json
  16
  0
  [1]
  $ grep -c '"snapshot_bytes"' bench.json
  8
  $ grep -c '"speedup"' bench.json; grep -c '"extrapolated_speedup_at_max"' bench.json
  16
  1

The human-readable rendering carries the same equivalence and
segmented-checkpoint verdicts (8 policies each):

  $ dbp bench --quick | grep -c '| yes'
  16

Since schema /2 the JSON also carries per-policy engine profiles:

  $ grep -c '"spans"' bench.json
  8

Since schema /4 every fast row carries its own per-phase breakdown
(policy / commit / views) from a second, profiled run of the same
size, and naive rows carry an empty list:

  $ grep -c '"phases": \[{' bench.json
  16
  $ grep -c '"phases": \[\]' bench.json
  8

The perf-regression gate compares the slowest fast-engine policy at
the largest size against a checked-in events/second floor
(bench-floor.txt at the repo root in CI; any figure is fine here):

  $ printf '# floor\n1\n' > floor.txt
  $ dbp bench --quick --assert-floor floor.txt | tail -1 | sed 's/at [0-9]* events/at N events/'
  perf floor ok: slowest fast-engine policy at N events/s (floor 1)
  $ printf '99000000\n' > ceiling.txt
  $ dbp bench --quick --assert-floor ceiling.txt 2>&1 > /dev/null | sed 's/at [0-9]* events/at N events/'
  perf regression: slowest fast-engine policy at N events/s is below the 99000000 floor in ceiling.txt

A malformed floor file is invalid input (exit 2), and the error names
the offending line rather than echoing float_of_string's bare failure:

  $ printf '# events/s floor\nfast\n' > bad-floor.txt
  $ dbp bench --quick --assert-floor bad-floor.txt > /dev/null
  dbp: bad-floor.txt: line 2 is not a number: "fast"
  [2]

Structured event tracing: every engine event as one NDJSON line, with
a monotonic sequence number and exact rational timestamps.  The
--validate flag re-parses every line against the schema and asserts
the traced packing is bit-identical to an untraced run:

  $ dbp trace --trace trace.csv -o events.ndjson --validate
  wrote 118 events to events.ndjson
  trace: 118 events validate against dbp-trace/2
  trace: traced run bit-identical to untraced (cost 120481/2000)
  $ head -1 events.ndjson
  {"seq":0,"t":"301/5000","kind":"arrive","item":0,"size":"869/1250"}
  $ grep -c '"kind":"pack"' events.ndjson
  30

The metrics registry: counters and exact sums are deterministic, so
the whole report is pinned (the bin_seconds exact sum must equal the
simulate cost above):

  $ dbp metrics --trace trace.csv
  first_fit: 14 bins, cost=120481/2000 (60.2405), max open=6, any-fit violations=0
  == metrics (counters, gauges, exact sums) ==
  metric      | kind    | value
  ------------+---------+--------------------
  arrivals    | counter | 30
  bins_closed | counter | 14
  bins_opened | counter | 14
  departures  | counter | 30
  open_bins   | gauge   | 0
  bin_seconds | rat sum | 60.24 (120481/2000)
  == metrics (histograms) ==
  histogram           | n  | mean   | p50    | p95    | min    | max
  --------------------+----+--------+--------+--------+--------+-------
  bin_lifetime        | 14 | 4.303  | 3.925  | 10.61  | 1      | 11.62
  item_held           | 30 | 2.556  | 1.711  | 6      | 1      | 6
  open_bins           | 60 | 3.4    | 3.5    | 5      | 0      | 6
  utilisation_at_pack | 30 | 0.7139 | 0.7449 | 0.8985 | 0.3784 | 0.9577

Checkpoint/restore: freeze the First Fit run mid-stream (event 33 of
60), inspect the image, resume it — the summary matches the
uninterrupted simulate line above — and have --verify prove the
bit-identity (packing, exact cost and trace suffix):

  $ dbp checkpoint --trace trace.csv --policy first-fit --save snap.ndjson --at 33
  checkpoint: froze first-fit after 33 event(s) to snap.ndjson
  $ head -1 snap.ndjson
  {"schema":"dbp-checkpoint/1","kind":"engine","policy":"first-fit","seed":"42","events_applied":33,"trace_seq":68,"capacity":"1","clock":"8371/1000","violations":0,"bins":10,"metered":0}
  $ dbp checkpoint --inspect snap.ndjson
  schema:             dbp-checkpoint/1 (engine)
  policy:             first-fit (seed 42)
  events applied:     33
  trace position:     68
  clock:              8371/1000
  bins:               10 total, 5 open
  active items:       7
  closed-bin cost:    30459/2000
  any-fit violations: 0
  metrics:            none
  $ dbp checkpoint --trace trace.csv --resume snap.ndjson --trace-out resumed.ndjson
  wrote resumed event stream to resumed.ndjson
  first_fit: 14 bins, cost=120481/2000 (60.2405), max open=6, any-fit violations=0
  $ head -1 resumed.ndjson
  {"seq":68,"t":"85877/10000","kind":"depart","item":10,"bin":5,"held":"7161/2000"}
  $ dbp checkpoint --trace trace.csv --verify snap.ndjson
  verify: resumed run bit-identical to the uninterrupted one

Random Fit round-trips its RNG state through the snapshot — the
resumed stream keeps drawing exactly where the frozen one stopped:

  $ dbp checkpoint --trace trace.csv --policy random-fit --save rsnap.ndjson --at 41
  checkpoint: froze random-fit after 41 event(s) to rsnap.ndjson
  $ dbp checkpoint --trace trace.csv --verify rsnap.ndjson
  verify: resumed run bit-identical to the uninterrupted one

Corrupt or unusable snapshots exit 2 with a diagnostic, never a
half-resumed run:

  $ sed '$d' snap.ndjson > truncated.ndjson
  $ dbp checkpoint --inspect truncated.ndjson
  truncated.ndjson: corrupt snapshot: missing footer line (truncated snapshot?)
  [2]
  $ sed 's/"policy":"first-fit"/"policy":"bogus"/' snap.ndjson > bogus.ndjson
  $ dbp checkpoint --trace trace.csv --resume bogus.ndjson
  dbp: snapshot names an unknown policy "bogus"
  [2]
  $ dbp checkpoint
  dbp checkpoint: pick one of --save / --resume / --inspect / --verify
  [2]

Budget-aware repacking: with budget 0 the repacker is bit-identical to
plain First Fit (same cost as the simulate line above, nothing moved);
with a 4-move allowance it drains four sparse bins early; unlimited,
it keeps consolidating and the cost only drops:

  $ dbp repack --trace trace.csv --budget 0 --json
  {"schema":"dbp-repack/1","policy":"first-fit","repack":"consolidate","budget":"items:total:0","cost":"120481/2000","max_bins":6,"migrations":0,"moved_volume":"0","bins_drained":0,"reclaimed":"0","denied":0}
  $ dbp repack --trace trace.csv --budget 4
  first_fit: 17 bins, cost=557539/10000 (55.7539), max open=6, any-fit violations=0
  repack consolidate, budget items:total:4: 4 migration(s), 1.004 volume moved, 4 bin(s) drained shut, 5.4272 bin-seconds reclaimed, 12 denied trigger(s)
  $ dbp repack --trace trace.csv --budget inf --json
  {"schema":"dbp-repack/1","policy":"first-fit","repack":"consolidate","budget":"items:inf","cost":"484669/10000","max_bins":6,"migrations":10,"moved_volume":"931/400","bins_drained":9,"reclaimed":"144549/10000","denied":0}
  $ dbp repack --trace trace.csv --sweep 0,4,inf --assert-monotone
  budget items:total:0    cost 120481/2000  migrations 0     drained 0
  budget items:total:4    cost 557539/10000 migrations 4     drained 4
  budget items:inf        cost 484669/10000 migrations 10    drained 9

Kill the repacking run at its midpoint and prove the resumed run
bit-identical (budget balance and migration log ride the snapshot):

  $ dbp repack --trace trace.csv --verify
  verify: repack run killed at event 30/60 resumes bit-identically

Invalid or negative budgets and unknown repack policies exit 2:

  $ dbp repack --trace trace.csv --budget=-1
  dbp repack: negative total budget: -1
  [2]
  $ dbp repack --trace trace.csv --budget nonsense:x
  dbp repack: malformed budget spec: 'nonsense:x'
  [2]
  $ dbp repack --trace trace.csv --budget volume:bucket:1:-1
  dbp repack: negative burst budget: -1
  [2]
  $ dbp repack --trace trace.csv --repack bogus
  dbp repack: unknown repack policy 'bogus' (expected none, consolidate or ffd)
  [2]

The fault injector's migration rung: with a recourse budget armed, a
crash victim's sessions migrate into the surviving fleet before the
evict/restart/shed ladder sees them:

  $ dbp faults --trace trace.csv --policy best-fit --kill-fullest-at 5,9 --seed 5 --repack-budget inf
  plan targeted-fullest: 2 faults over horizon [0, 19.5485]
  best_fit: 17 bins, cost=59027/1000 (59.027), max open=6, any-fit violations=0
  faults          : 2 injected, 0 skipped
  interrupted     : 2 sessions, 0.7957 session-seconds displaced
  live-migrated   : 1 sessions, 0.189 volume
  recovered       : 2 resumed, 0 lost, 0 shed
  launch retries  : 0 failures, 0 retries
  recovery latency: mean 0.25, p95 0.25, max 0.25
  availability    : 0.99348 (served 76.191 / demanded 76.691)
  cost            : 59.027 faulty vs 59.6456 fault-free (overhead 0.989629)

A trace with shuffled but valid ids loads (ids are preserved), while
duplicate ids die with a diagnostic naming both lines:

  $ printf '# capacity=1\nid,size,arrival,departure\n1,1/2,0,2\n0,1/3,1,3\n' > shuffled.csv
  $ dbp simulate --trace shuffled.csv | head -1
  first_fit: 1 bins, cost=3 (3), max open=1, any-fit violations=0
  $ printf '# capacity=1\nid,size,arrival,departure\n0,1/2,0,2\n0,1/3,1,3\n' > dup.csv
  $ dbp simulate --trace dup.csv
  dup.csv: trace parse error at line 4 (field 'id'): duplicate id 0 (first used at line 3)
  [2]

CSV artefact export:

  $ dbp experiments e1 --out-dir artefacts | tail -1
  wrote CSV/chart artefacts to artefacts/
  $ ls artefacts | head -2
  e1-0-e1--any-fit-vs-the-figure-2-adversary--policy---.csv
  e1-1-e1b--same-trap--all-deterministic-any-fit-polici.csv

The lint pass: a fixture tree with one violation of each rule R1-R7.
Paths drive the rule scoping, so the tree mirrors the repo layout:

  $ mkdir -p lintfx/lib/core lintfx/lib/workload lintfx/lib/opt lintfx/lib/faults
  $ printf 'let x = 1.5\n' > lintfx/lib/core/fx_r1.ml
  $ printf 'let bad r = r = 0.0\n' > lintfx/lib/workload/fx_r2.ml
  $ printf 'let f a = a = Rat.zero\n' > lintfx/lib/opt/fx_r3.ml
  $ printf 'let f g = try g () with _ -> 0\n' > lintfx/lib/opt/fx_r4.ml
  $ printf 'let a = Atomic.make 0\n' > lintfx/lib/faults/fx_r5.ml
  $ printf 'let f x xs = List.mem x xs\n' > lintfx/lib/core/simulator.ml
  $ printf 'let f s r = Fixed.of_rat s r\n' > lintfx/lib/opt/fx_r7.ml

  $ dbp check --lint --root lintfx --no-baseline --json
  {
    "version": 1,
    "findings": [
      {"rule": "R1", "severity": "error", "path": "lintfx/lib/core/fx_r1.ml", "line": 1, "col": 8, "message": "float literal in exact-arithmetic library; use Rat.make"},
      {"rule": "R6", "severity": "warning", "path": "lintfx/lib/core/simulator.ml", "line": 1, "col": 13, "message": "List.mem in a hot-path engine module (O(n) scan); use the dense store / Open_index / a hashtable"},
      {"rule": "R5", "severity": "error", "path": "lintfx/lib/faults/fx_r5.ml", "line": 1, "col": 8, "message": "Atomic.make outside the approved parallel runners (lib/experiments/registry.ml, lib/serve/shard_pool.ml)"},
      {"rule": "R3", "severity": "warning", "path": "lintfx/lib/opt/fx_r3.ml", "line": 1, "col": 10, "message": "polymorphic = on a Rat.t-bearing expression; use Rat.equal"},
      {"rule": "R4", "severity": "warning", "path": "lintfx/lib/opt/fx_r4.ml", "line": 1, "col": 24, "message": "catch-all try ... with _ swallows every exception; match the exceptions you mean"},
      {"rule": "R7", "severity": "error", "path": "lintfx/lib/opt/fx_r7.ml", "line": 1, "col": 12, "message": "Fixed.of_rat outside lib/num and the two-track engine (lib/core/simulator.ml); pass exact Rat values and let the engine decide the representation"},
      {"rule": "R2", "severity": "error", "path": "lintfx/lib/workload/fx_r2.ml", "line": 1, "col": 12, "message": "float = comparison against a literal; use an epsilon test or Float.equal deliberately"}
    ],
    "summary": {"files_scanned": 7, "findings": 7, "errors": 4, "baselined": 0, "stale_baseline": 0}
  }
  [1]

Strict mode fails on warnings too; a baseline accepts the findings:

  $ dbp check --lint --root lintfx --no-baseline --strict > /dev/null
  [1]
  $ dbp check --lint --root lintfx --baseline accepted.txt --update-baseline
  baseline updated: accepted.txt (7 finding(s) accepted)
  $ dbp check --lint --root lintfx --baseline accepted.txt --strict
  lint: 7 file(s) scanned, 0 finding(s) (0 error(s)), 7 baselined

Old positional baseline entries (rule|path|line|col) still suppress,
with a deprecation note pointing at --update-baseline:

  $ printf 'R2|lintfx/lib/workload/fx_r2.ml|1|12\n' > legacy.txt
  $ dbp check --lint --root lintfx/lib/workload --baseline legacy.txt
  deprecated: 1 baseline entr(y/ies) use the old rule|path|line|col format; regenerate with --update-baseline
  lint: 1 file(s) scanned, 0 finding(s) (0 error(s)), 1 baselined

The typed tier (T1-T4) reads the .cmt typedtrees a dune build leaves
under _build; without one it degrades with a pointer, not a crash:

  $ dbp check --typed
  dbp check: typed lint: no .cmt artifacts found under the requested roots (run dune build first)
  [2]

  $ dbp check --rules | grep -o '^[RT][0-9] \[[a-z]*\]'
  R1 [error]
  R2 [error]
  R3 [warning]
  R4 [warning]
  R5 [error]
  R6 [warning]
  R7 [error]
  T1 [error]
  T2 [error]
  T3 [error]
  T4 [warning]

The runtime auditor replays seeded workloads and crash storms with the
invariant sanitizer on, and cross-checks audited vs plain packings:

  $ dbp check --audit --json
  {"audit": {"runs": 24, "mismatches": 0, "violation": null}}

The fleet service: `dbp serve --replay` drives a trace through an
in-process daemon over a socketpair.  At --shards 1 the fleet cost is
bit-identical to `dbp simulate` on the same trace (120481/2000 above);
at --shards 3 the size-class router splits the stream and the exact
per-shard costs sum to the fleet cost:

  $ dbp serve --replay trace.csv --shards 1 | grep -o '"cost":"[^"]*"'
  "cost":"120481/2000"
  $ dbp serve --replay trace.csv --shards 3
  {"kind":"summary","schema":"dbp-serve-summary/1","shards":3,"live":3,"policy":"first-fit","route":"size-class","arrivals":30,"departures":30,"active":0,"migrated":0,"shed":0,"bins_opened":23,"cost":"165211/2500","shard_costs":"397707/10000,173137/10000,9"}

A stream on stdin is answered with one placement line per arrival; the
final line may legally arrive without a trailing newline:

  $ printf '{"seq":0,"t":"1","kind":"arrive","item":0,"size":"1/2"}' | dbp serve
  {"kind":"place","seq":0,"item":0,"bin":0,"shard":0}
  {"kind":"summary","schema":"dbp-serve-summary/1","shards":1,"live":1,"policy":"first-fit","route":"size-class","arrivals":1,"departures":0,"active":1,"migrated":0,"shed":0,"bins_opened":1,"cost":"0","shard_costs":"0"}

Protocol violations answer with an error line naming the byte offset
and exit 2, as do invalid flags:

  $ echo 'garbage' | dbp serve
  {"kind":"error","line":1,"byte":0,"message":"expected '{' at column 0"}
  dbp serve: line 1 (byte 0): expected '{' at column 0
  [2]
  $ printf '{"seq":5,"t":"1","kind":"arrive","item":0,"size":"1/2"}\n' | dbp serve
  {"kind":"error","line":1,"byte":0,"message":"sequence number 5, expected 0"}
  dbp serve: line 1 (byte 0): sequence number 5, expected 0
  [2]
  $ dbp serve --shards 0 --stdio
  dbp serve: --shards must be >= 1, got 0
  [2]
  $ dbp serve --route sideways --stdio
  dbp serve: unknown route policy "sideways" (size-class|hash)
  [2]
  $ dbp serve --replay trace.csv --bench
  dbp serve: choose one of --stdio, --socket, --tcp, --replay, --bench
  [2]

The daemon proper listens on a Unix socket, serves connections against
one persistent fleet, and on SIGTERM quiesces, flushes one checkpoint
per shard and exits 0 with the final summary:

  $ dbp serve --socket serve.sock --checkpoint ck > daemon.out 2>&1 &
  $ DPID=$!
  $ for i in $(seq 50); do [ -S serve.sock ] && break; sleep 0.1; done
  $ dbp serve --replay trace.csv --connect serve.sock | grep -o '"cost":"[^"]*"'
  "cost":"120481/2000"
  $ kill -TERM $DPID && wait $DPID
  $ cat daemon.out
  {"kind":"summary","schema":"dbp-serve-summary/1","shards":1,"live":1,"policy":"first-fit","route":"size-class","arrivals":30,"departures":30,"active":0,"migrated":0,"shed":0,"bins_opened":14,"cost":"120481/2000","shard_costs":"120481/2000"}
  $ dbp checkpoint --inspect ck.shard0
  schema:             dbp-checkpoint/1 (engine)
  policy:             first-fit (seed 42)
  events applied:     60
  trace position:     0
  clock:              39097/2000
  bins:               14 total, 0 open
  active items:       0
  closed-bin cost:    120481/2000
  any-fit violations: 0
  metrics:            none
