(* The fault-injection subsystem: empty-plan equivalence with the plain
   simulator, exact hand-checked accounting of crashes and recoveries,
   retry/backoff, the admission gate, and qcheck invariants under
   random fault plans. *)

open Dbp_num
open Dbp_core
open Dbp_faults
open Test_util

let mk ?(size = r 1 2) a d =
  Item.make ~id:0 ~size ~arrival:(ri a) ~departure:(ri d)

let inst items = Instance.create ~capacity:Rat.one items

let equivalence_policies () =
  [
    First_fit.policy;
    Best_fit.policy;
    Worst_fit.policy;
    Modified_first_fit.policy_mu_oblivious;
  ]

(* With no faults the injector must reproduce [Simulator.run]
   bit-for-bit: same bins with the same open intervals, same
   assignment, same exact rational cost. *)
let check_empty_plan_equivalence policy instance =
  let name = policy.Policy.name in
  let direct = Simulator.run ~policy instance in
  let faulty = Injector.run ~plan:Fault_plan.empty ~policy instance in
  let p = faulty.Injector.packing in
  assert_valid_packing p;
  check_rat (name ^ ": same total cost") direct.Packing.total_cost
    p.Packing.total_cost;
  Alcotest.(check int)
    (name ^ ": same bin count")
    (Packing.bins_used direct) (Packing.bins_used p);
  Alcotest.(check (array int))
    (name ^ ": same assignment")
    direct.Packing.assignment p.Packing.assignment;
  Array.iter2
    (fun (a : Packing.bin_record) (b : Packing.bin_record) ->
      check_rat (name ^ ": same bin opening") a.Packing.opened b.Packing.opened;
      check_rat (name ^ ": same bin closing") a.Packing.closed b.Packing.closed;
      Alcotest.(check (list int))
        (name ^ ": same bin contents")
        a.Packing.item_ids b.Packing.item_ids)
    direct.Packing.bins p.Packing.bins;
  let res = faulty.Injector.resilience in
  Alcotest.(check int) (name ^ ": nothing interrupted") 0
    res.Resilience.interrupted_sessions;
  check_rat (name ^ ": overhead 1") Rat.one (Resilience.cost_overhead res);
  check_rat (name ^ ": availability 1") Rat.one (Resilience.availability res)

let test_empty_plan_bit_for_bit () =
  List.iter
    (fun seed ->
      let instance =
        Dbp_workload.Generator.generate ~seed
          { Dbp_workload.Spec.default with Dbp_workload.Spec.count = 40 }
      in
      List.iter
        (fun policy -> check_empty_plan_equivalence policy instance)
        (equivalence_policies ()))
    [ 11L; 12L; 13L ]

(* Two half-size sessions share one FF bin over [0,4]; the fullest bin
   is killed at t=2.  The dead bin pays exactly [0,2]; both sessions
   restart after the 1/4 crash delay into one new bin over [9/4, 4].
   Every number below is checkable by hand. *)
let test_crash_accounting () =
  let instance = inst [ mk 0 4; mk 0 4 ] in
  let plan = Fault_plan.targeted_fullest ~times:[ Rat.two ] in
  let { Injector.packing; resilience = res; effective } =
    Injector.run ~plan ~policy:First_fit.policy instance
  in
  assert_valid_packing packing;
  Alcotest.(check int) "two bins" 2 (Packing.bins_used packing);
  check_rat "failed bin pays [0,2], replacement pays [9/4,4]" (r 15 4)
    packing.Packing.total_cost;
  Alcotest.(check int) "one fault injected" 1 res.Resilience.faults_injected;
  Alcotest.(check int) "both sessions interrupted" 2
    res.Resilience.interrupted_sessions;
  check_rat "blast radius: 2 remaining seconds each" (ri 4)
    res.Resilience.interrupted_session_seconds;
  Alcotest.(check int) "both resumed" 2 res.Resilience.resumed_sessions;
  Alcotest.(check int) "none lost" 0 res.Resilience.lost_sessions;
  Alcotest.(check (list rat)) "restart-delay latencies"
    [ r 1 4; r 1 4 ]
    res.Resilience.recovery_latencies;
  check_rat "served 2+2 then 7/4+7/4" (r 15 2)
    res.Resilience.served_session_seconds;
  check_rat "demanded 4+4" (ri 8) res.Resilience.demand_session_seconds;
  check_rat "availability 15/16" (r 15 16) (Resilience.availability res);
  (* effective instance: the two truncated originals + two recoveries *)
  Alcotest.(check int) "four session segments" 4 (Instance.size effective)

(* A preemption with warning restarts at the preemption instant
   itself — no restart delay, zero recovery latency. *)
let test_preemption_restarts_immediately () =
  let instance = inst [ mk 0 4 ] in
  let plan =
    Fault_plan.make
      [
        {
          Fault_plan.at = Rat.two;
          victim = Fault_plan.Fullest;
          kind = Fault_plan.Preemption { warning = r 1 2 };
        };
      ]
  in
  let { Injector.packing; resilience = res; _ } =
    Injector.run ~plan ~policy:First_fit.policy instance
  in
  assert_valid_packing packing;
  Alcotest.(check (list rat)) "zero latency" [ Rat.zero ]
    res.Resilience.recovery_latencies;
  check_rat "no session time lost" Rat.one (Resilience.availability res);
  check_rat "bin [0,2] + bin [2,4]" (ri 4) packing.Packing.total_cost

(* A crash so close to the session's departure that the restart delay
   overshoots the window: the session is lost, not resumed. *)
let test_lost_session () =
  let instance = inst [ mk 0 1 ] in
  let plan = Fault_plan.targeted_fullest ~times:[ r 7 8 ] in
  let { Injector.packing; resilience = res; _ } =
    Injector.run ~plan ~policy:First_fit.policy instance
  in
  assert_valid_packing packing;
  Alcotest.(check int) "interrupted" 1 res.Resilience.interrupted_sessions;
  Alcotest.(check int) "lost" 1 res.Resilience.lost_sessions;
  Alcotest.(check int) "not resumed" 0 res.Resilience.resumed_sessions;
  check_rat "only [0,7/8] was served" (r 7 8)
    res.Resilience.served_session_seconds;
  check_rat "availability 7/8" (r 7 8) (Resilience.availability res)

(* Admission gate: with a one-bin fleet cap, a request that fits no
   open bin is deferred under backoff and lands once the fleet drains.
   Timeline: deferred at 0, 1/4, 3/4; the blocking session leaves at 1;
   the retry at 7/4 finds an empty fleet and opens the second bin. *)
let test_admission_gate_defers_then_places () =
  let instance =
    inst [ mk ~size:(r 3 5) 0 1; mk ~size:(r 3 5) 0 4 ]
  in
  let config = { Injector.default_config with Injector.max_fleet = Some 1 } in
  let { Injector.packing; resilience = res; _ } =
    Injector.run ~config ~plan:Fault_plan.empty ~policy:First_fit.policy
      instance
  in
  assert_valid_packing packing;
  Alcotest.(check int) "two bins, never concurrent" 2
    (Packing.bins_used packing);
  Alcotest.(check int) "fleet bound respected" 1 packing.Packing.max_bins;
  Alcotest.(check int) "three backoff deferrals" 3 res.Resilience.retries;
  Alcotest.(check int) "nothing shed" 0 res.Resilience.shed_requests;
  check_rat "bin0 [0,1] + bin1 [7/4,4]" (r 13 4) packing.Packing.total_cost;
  check_rat "served 1 + 9/4 of demanded 5" (r 13 20)
    (Resilience.availability res)

(* max_pending sheds the lowest-priority deferred request when the
   queue overflows. *)
let test_max_pending_sheds_lowest_priority () =
  let instance =
    inst
      [
        mk ~size:(r 3 5) 0 8;
        mk ~size:(r 3 5) 0 4;
        mk ~size:(r 3 5) 0 4;
      ]
  in
  let config =
    { Injector.default_config with
      Injector.max_fleet = Some 1;
      max_pending = Some 1 }
  in
  let priority (i : Item.t) = -i.Item.id in
  let { Injector.resilience = res; _ } =
    Injector.run ~config ~priority ~plan:Fault_plan.empty
      ~policy:First_fit.policy instance
  in
  (* item 0 holds the only bin until t=8, past both other deadlines;
     with one pending slot, the lower-priority item 2 is shed as soon
     as both are queued. *)
  Alcotest.(check bool) "at least one request shed" true
    (res.Resilience.shed_requests >= 1);
  Alcotest.(check bool) "shed demand dents availability" true
    Rat.(Resilience.availability res < Rat.one)

let test_launch_failures_deterministic () =
  let instance =
    Dbp_workload.Generator.generate ~seed:21L
      { Dbp_workload.Spec.default with Dbp_workload.Spec.count = 30 }
  in
  let config =
    { Injector.default_config with Injector.launch_failure_prob = 0.5 }
  in
  let run () =
    Injector.run ~config ~plan:Fault_plan.empty ~policy:Best_fit.policy
      instance
  in
  let a = run () and b = run () in
  assert_valid_packing a.Injector.packing;
  Alcotest.(check bool) "some launches failed" true
    (a.Injector.resilience.Resilience.launch_failures > 0);
  check_rat "same seed, same cost" a.Injector.packing.Packing.total_cost
    b.Injector.packing.Packing.total_cost;
  Alcotest.(check int) "same seed, same failure count"
    a.Injector.resilience.Resilience.launch_failures
    b.Injector.resilience.Resilience.launch_failures;
  let c =
    Injector.run
      ~config:{ config with Injector.seed = 43L }
      ~plan:Fault_plan.empty ~policy:Best_fit.policy instance
  in
  Alcotest.(check bool) "different seed, different rolls" true
    (a.Injector.resilience.Resilience.launch_failures
     <> c.Injector.resilience.Resilience.launch_failures
    || not
         (Rat.equal a.Injector.packing.Packing.total_cost
            c.Injector.packing.Packing.total_cost))

let test_all_shed_raises () =
  let instance = inst [ mk 0 1 ] in
  let config =
    { Injector.default_config with Injector.launch_failure_prob = 1.0 }
  in
  Alcotest.(check bool) "nothing ever placed" true
    (try
       ignore
         (Injector.run ~config ~plan:Fault_plan.empty ~policy:First_fit.policy
            instance);
       false
     with Invalid_argument _ -> true)

(* -- qcheck invariants under random fault plans --------------------- *)

let faulty_gen =
  QCheck2.Gen.(
    map3
      (fun instance crash_seed rate ->
        (instance, Int64.of_int crash_seed, float_of_int rate /. 4.0))
      (instance_gen ~max_items:25 ())
      (int_range 0 10_000) (int_range 0 8))

let run_faulty (instance, seed, rate) =
  let horizon = Interval.hi (Instance.packing_period instance) in
  let plan = Fault_plan.poisson_crashes ~seed ~rate ~horizon in
  Injector.run
    ~config:{ Injector.default_config with Injector.seed = seed }
    ~plan ~policy:First_fit.policy instance

let prop_tests =
  [
    qcheck ~count:150 "faulty packings validate" faulty_gen (fun input ->
        match run_faulty input with
        | { Injector.packing; _ } -> Packing.validate packing = Ok ()
        | exception Invalid_argument _ -> true (* everything shed *));
    qcheck ~count:150 "resilience accounting is conserved" faulty_gen
      (fun input ->
        match run_faulty input with
        | exception Invalid_argument _ -> true
        | { Injector.resilience = res; _ } ->
            Rat.(Resilience.availability res <= Rat.one)
            && Rat.(res.Resilience.served_session_seconds >= Rat.zero)
            && res.Resilience.resumed_sessions + res.Resilience.lost_sessions
               = res.Resilience.interrupted_sessions
            && List.length res.Resilience.recovery_latencies
               = res.Resilience.resumed_sessions
            && List.for_all
                 (fun l -> Rat.(l >= Rat.zero))
                 res.Resilience.recovery_latencies);
    qcheck ~count:100 "faulty cost equals its own timeline integral"
      faulty_gen (fun input ->
        match run_faulty input with
        | exception Invalid_argument _ -> true
        | { Injector.packing; _ } ->
            Rat.equal packing.Packing.total_cost
              (Step_fn.integral packing.Packing.timeline));
  ]

let suite =
  [
    Alcotest.test_case "empty plan is bit-for-bit Simulator.run" `Quick
      test_empty_plan_bit_for_bit;
    Alcotest.test_case "crash accounting" `Quick test_crash_accounting;
    Alcotest.test_case "preemption restarts immediately" `Quick
      test_preemption_restarts_immediately;
    Alcotest.test_case "lost session" `Quick test_lost_session;
    Alcotest.test_case "admission gate" `Quick
      test_admission_gate_defers_then_places;
    Alcotest.test_case "max_pending sheds" `Quick
      test_max_pending_sheds_lowest_priority;
    Alcotest.test_case "seeded launch failures" `Quick
      test_launch_failures_deterministic;
    Alcotest.test_case "all shed raises" `Quick test_all_shed_raises;
  ]
  @ prop_tests
