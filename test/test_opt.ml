open Dbp_num
open Dbp_core
open Dbp_opt
open Test_util

let sizes l = Size_set.of_sizes l
let cap = Rat.one

let test_size_set () =
  let s = sizes [ r 1 2; r 1 3; r 3 4 ] in
  Alcotest.(check int) "cardinal" 3 (Size_set.cardinal s);
  check_rat "total" (Rat.sum [ r 1 2; r 1 3; r 3 4 ]) (Size_set.total s);
  Alcotest.(check bool) "descending" true
    (Size_set.to_list s = [ r 3 4; r 1 2; r 1 3 ]);
  Alcotest.(check bool) "equal ignores order" true
    (Size_set.equal s (sizes [ r 3 4; r 1 3; r 1 2 ]));
  Alcotest.(check int) "hash agrees" (Size_set.hash s)
    (Size_set.hash (sizes [ r 3 4; r 1 3; r 1 2 ]));
  Alcotest.(check bool) "rejects nonpositive" true
    (try
       ignore (sizes [ Rat.zero ]);
       false
     with Invalid_argument _ -> true)

let test_lower_bounds () =
  Alcotest.(check int) "l1 empty" 0 (Lower_bound.l1 (sizes []) ~capacity:cap);
  Alcotest.(check int) "l1 rounding" 2
    (Lower_bound.l1 (sizes [ r 3 4; r 3 4 ]) ~capacity:cap);
  (* three items of 3/4: l1 = ceil(9/4) = 3, l2 = 3 (each > 1/2) *)
  Alcotest.(check int) "l2 big items" 3
    (Lower_bound.l2 (sizes [ r 3 4; r 3 4; r 3 4 ]) ~capacity:cap);
  (* l2 beats l1: items 0.6,0.6,0.4 -> l1 = 2 but the two 0.6s alone
     force 2 and 0.4 fits nowhere beside them except one -> l2 = 2;
     classic case where they tie; use 0.6 x 3: l1 = 2, l2 = 3. *)
  Alcotest.(check int) "l2 dominates l1" 3
    (Lower_bound.l2 (sizes [ r 3 5; r 3 5; r 3 5 ]) ~capacity:cap);
  Alcotest.(check int) "best picks max" 3
    (Lower_bound.best (sizes [ r 3 5; r 3 5; r 3 5 ]) ~capacity:cap)

let test_heuristics () =
  (* FFD on 0.6,0.5,0.5,0.4: -> [0.6+0.4][0.5+0.5] = 2 bins *)
  Alcotest.(check int) "ffd" 2
    (Heuristic.first_fit_decreasing
       (sizes [ r 3 5; r 1 2; r 1 2; r 2 5 ])
       ~capacity:cap);
  Alcotest.(check int) "bfd" 2
    (Heuristic.best_fit_decreasing
       (sizes [ r 3 5; r 1 2; r 1 2; r 2 5 ])
       ~capacity:cap);
  Alcotest.(check int) "empty" 0
    (Heuristic.first_fit_decreasing (sizes []) ~capacity:cap)

let test_exact_simple () =
  let check name expected szs =
    match Exact.solve (sizes szs) ~capacity:cap with
    | Exact.Exact n -> Alcotest.(check int) name expected n
    | Exact.Interval _ -> Alcotest.failf "%s: budget tripped" name
  in
  check "empty" 0 [];
  check "single" 1 [ r 1 2 ];
  check "pair fits" 1 [ r 1 2; r 1 2 ];
  check "pair conflicts" 2 [ r 3 5; r 3 5 ];
  check "three thirds" 1 [ r 1 3; r 1 3; r 1 3 ];
  (* {1/2, 5/12, 5/12, 1/3, 1/3}: total volume 2 but no 2-bin packing
     exists (every pair leaves a hole smaller than 1/3) -> OPT = 3. *)
  check "mixed needs 3 despite volume 2" 3 [ r 1 2; r 5 12; r 5 12; r 1 3; r 1 3 ];
  (* OPT beats FFD: classic {0.42,0.42,0.3,0.3,0.28,0.28}: FFD gives
     [.42+.42][.3+.3+.28][.28]=3; OPT packs [.42+.3+.28] twice = 2. *)
  check "ffd-suboptimal instance" 2
    [ r 21 50; r 21 50; r 3 10; r 3 10; r 7 25; r 7 25 ]

let test_exact_beats_ffd () =
  let szs = sizes [ r 21 50; r 21 50; r 3 10; r 3 10; r 7 25; r 7 25 ] in
  Alcotest.(check int) "ffd = 3" 3
    (Heuristic.first_fit_decreasing szs ~capacity:cap);
  Alcotest.(check int) "exact = 2" 2 (Exact.solve_exn szs ~capacity:cap)

let test_exact_budget () =
  (* A tiny budget forces an interval answer on a nontrivial set. *)
  let szs =
    sizes (List.init 20 (fun i -> Rat.make (17 + (i mod 7)) 60))
  in
  match Exact.solve ~node_budget:3 szs ~capacity:cap with
  | Exact.Interval { lower; upper } ->
      Alcotest.(check bool) "lower <= upper" true (lower <= upper);
      Alcotest.(check bool) "lower from l2" true
        (lower = Lower_bound.best szs ~capacity:cap)
  | Exact.Exact _ -> Alcotest.fail "expected interval with budget 3"

let mk ?(size = r 1 2) a d =
  Item.make ~id:0 ~size ~arrival:(ri a) ~departure:(ri d)

let inst items = Instance.create ~capacity:Rat.one items

let test_opt_total_simple () =
  (* Two half items overlapping on [1,2]: OPT = 1 bin on [0,1), 1 on
     [1,2), 1 on [2,3): integral 3. *)
  let result = Opt_total.compute (inst [ mk 0 2; mk 1 3 ]) in
  Alcotest.(check bool) "exact" true result.Opt_total.exact;
  check_rat "value" (ri 3) (Opt_total.value_exn result);
  Alcotest.(check int) "max bins" 1 (Opt_total.max_bins result)

let test_opt_total_conflict () =
  (* Two 0.6 items on [0,2]: OPT = 2 bins for 2 time units. *)
  let result =
    Opt_total.compute (inst [ mk ~size:(r 3 5) 0 2; mk ~size:(r 3 5) 0 2 ])
  in
  check_rat "value" (ri 4) (Opt_total.value_exn result);
  Alcotest.(check int) "max bins" 2 (Opt_total.max_bins result)

let test_opt_total_gap () =
  (* Activity gap: OPT is 0 in between. *)
  let result = Opt_total.compute (inst [ mk 0 1; mk 5 6 ]) in
  check_rat "value skips gap" (ri 2) (Opt_total.value_exn result)

let test_opt_total_repacking_beats_online () =
  (* The Theorem 1 fragmentation instance: OPT repacks stragglers. *)
  let instance = Dbp_workload.Patterns.fragmentation ~k:3 ~mu:(ri 4) in
  let result = Opt_total.compute instance in
  (* OPT = 3 bins on [0,1), then 1 bin on [1,4): 3 + 3 = 6. *)
  check_rat "opt total" (ri 6) (Opt_total.value_exn result);
  let ff = Simulator.run ~policy:First_fit.policy instance in
  check_rat "ff pays k*mu" (ri 12) ff.Packing.total_cost

let test_bounds () =
  let instance = inst [ mk 0 2; mk ~size:(r 1 4) 1 3; mk 5 6 ] in
  check_rat "b.1" (Rat.sum [ ri 1; r 1 2; r 1 2 ]) (Bounds.demand_bound instance);
  check_rat "b.2" (ri 4) (Bounds.span_bound instance);
  check_rat "b.3" (ri 5) (Bounds.naive_upper_bound instance);
  check_rat "opt lower = max(b1,b2)" (ri 4) (Bounds.opt_lower_bound instance);
  Alcotest.(check bool) "segment bound dominates" true
    Rat.(Bounds.segment_lower_bound instance >= Bounds.opt_lower_bound instance)

let prop_tests =
  let size_set_gen =
    QCheck2.Gen.(
      map
        (fun l -> Size_set.of_sizes l)
        (list_size (int_range 0 9)
           (map (fun n -> Rat.make n 12) (int_range 1 12))))
  in
  [
    qcheck ~count:200 "lb <= exact <= ffd" size_set_gen (fun szs ->
        let lb = Lower_bound.best szs ~capacity:cap in
        let ub = Heuristic.best szs ~capacity:cap in
        match Exact.solve szs ~capacity:cap with
        | Exact.Exact n -> lb <= n && n <= ub
        | Exact.Interval { lower; upper } -> lb <= lower && upper <= ub);
    qcheck ~count:200 "l2 >= l1" size_set_gen (fun szs ->
        Lower_bound.l2 szs ~capacity:cap >= Lower_bound.l1 szs ~capacity:cap);
    qcheck ~count:200 "exact is monotone under item removal" size_set_gen
      (fun szs ->
        match Size_set.to_list szs with
        | [] -> true
        | _ :: rest ->
            Exact.solve_exn (Size_set.of_sizes rest) ~capacity:cap
            <= Exact.solve_exn szs ~capacity:cap);
    qcheck ~count:60 "opt_total between paper bounds"
      (instance_gen ~max_items:12 ()) (fun instance ->
        let result = Opt_total.compute instance in
        Rat.(result.Opt_total.upper >= Bounds.opt_lower_bound instance)
        && Rat.(result.Opt_total.lower <= Bounds.naive_upper_bound instance));
    qcheck ~count:60 "segment bound between b-bounds and OPT"
      (instance_gen ~max_items:12 ()) (fun instance ->
        let seg = Bounds.segment_lower_bound instance in
        let result = Opt_total.compute instance in
        Rat.(seg >= Bounds.opt_lower_bound instance)
        && Rat.(seg <= result.Opt_total.upper));
    qcheck ~count:60 "every policy pays at least OPT"
      (instance_gen ~max_items:12 ()) (fun instance ->
        let result = Opt_total.compute instance in
        List.for_all
          (fun (p : Packing.t) ->
            Rat.(p.Packing.total_cost >= result.Opt_total.lower))
          (run_all_policies instance));
  ]

let suite =
  [
    Alcotest.test_case "size set" `Quick test_size_set;
    Alcotest.test_case "lower bounds" `Quick test_lower_bounds;
    Alcotest.test_case "heuristics" `Quick test_heuristics;
    Alcotest.test_case "exact solver" `Quick test_exact_simple;
    Alcotest.test_case "exact beats FFD" `Quick test_exact_beats_ffd;
    Alcotest.test_case "exact budget" `Quick test_exact_budget;
    Alcotest.test_case "opt_total simple" `Quick test_opt_total_simple;
    Alcotest.test_case "opt_total conflict" `Quick test_opt_total_conflict;
    Alcotest.test_case "opt_total gap" `Quick test_opt_total_gap;
    Alcotest.test_case "opt_total repacking" `Quick
      test_opt_total_repacking_beats_online;
    Alcotest.test_case "paper bounds" `Quick test_bounds;
  ]
  @ prop_tests

(* ---- brute force cross-check of the exact solver ------------------- *)

(* Enumerate all set partitions of up to 8 items and keep the feasible
   ones: the ground-truth optimum. *)
let brute_force_opt szs ~capacity =
  let items = Array.of_list (Size_set.to_list szs) in
  let n = Array.length items in
  if n = 0 then 0
  else begin
    let best = ref n in
    (* bins as levels; add item i to each existing bin or a new one *)
    let rec go i levels used =
      if used >= !best then ()
      else if i >= n then best := min !best used
      else begin
        List.iteri
          (fun j level ->
            if Rat.(Rat.add level items.(i) <= capacity) then
              go (i + 1)
                (List.mapi
                   (fun j' l ->
                     if j' = j then Rat.add l items.(i) else l)
                   levels)
                used)
          levels;
        go (i + 1) (items.(i) :: levels) (used + 1)
      end
    in
    go 0 [] 0;
    !best
  end

let brute_force_props =
  let size_set_gen =
    QCheck2.Gen.(
      map
        (fun l -> Size_set.of_sizes l)
        (list_size (int_range 0 8)
           (map (fun n -> Rat.make n 12) (int_range 1 12))))
  in
  [
    qcheck ~count:300 "exact solver matches brute force (n <= 8)"
      size_set_gen (fun szs ->
        Exact.solve_exn szs ~capacity:cap = brute_force_opt szs ~capacity:cap);
  ]

(* ---- repacking baseline --------------------------------------------- *)

let test_repack_simple () =
  (* Fragmentation: online FF pays k*mu; repacking collapses to
     1 bin after the departures, paying k + (mu - 1). *)
  let instance = Dbp_workload.Patterns.fragmentation ~k:4 ~mu:(ri 5) in
  let repack = Repack_baseline.compute instance in
  check_rat "repack = OPT here" (ri 8) repack.Repack_baseline.cost;
  Alcotest.(check int) "max bins" 4 repack.Repack_baseline.max_bins;
  (* 4 stragglers consolidate into 1 bin: 3 of them migrate. *)
  Alcotest.(check int) "migrations" 3 repack.Repack_baseline.migrations;
  check_rat "moved volume 3/4" (r 3 4) repack.Repack_baseline.migrated_demand

let test_repack_no_migration_needed () =
  (* A single always-compatible stream never migrates. *)
  let instance =
    inst [ mk ~size:(r 1 4) 0 4; mk ~size:(r 1 4) 1 5; mk ~size:(r 1 4) 2 6 ]
  in
  let repack = Repack_baseline.compute instance in
  Alcotest.(check int) "no migrations" 0 repack.Repack_baseline.migrations;
  check_rat "cost = span" (ri 6) repack.Repack_baseline.cost

let repack_props =
  [
    qcheck ~count:80 "repack cost between LB and FF cost ... usually LB <= repack <= naive"
      (instance_gen ~max_items:20 ()) (fun instance ->
        let repack = Repack_baseline.compute instance in
        Rat.(repack.Repack_baseline.cost >= Bounds.opt_lower_bound instance)
        && Rat.(repack.Repack_baseline.cost <= Bounds.naive_upper_bound instance));
    qcheck ~count:60 "repack cost >= OPT_total" (instance_gen ~max_items:12 ())
      (fun instance ->
        let repack = Repack_baseline.compute instance in
        let opt = Opt_total.compute instance in
        Rat.(repack.Repack_baseline.cost >= opt.Opt_total.lower));
  ]

let suite = suite @ brute_force_props @ [
    Alcotest.test_case "repack on fragmentation" `Quick test_repack_simple;
    Alcotest.test_case "repack without migrations" `Quick
      test_repack_no_migration_needed;
  ] @ repack_props
