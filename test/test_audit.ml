(* The runtime invariant auditor: audit mode must be a pure observer
   (audited runs bit-identical to unaudited ones across every policy,
   including under fault injection), and deliberately corrupted engine
   or packing state must raise [Audit_violation] with the right
   invariant family. *)

open Dbp_num
open Dbp_core
open Test_util

(* ---- audit mode never steers the engine ----------------------------- *)

let audit_seeds = [ 11L; 29L; 43L ]

let test_audit_transparent () =
  List.iter
    (fun seed ->
      let instance =
        Dbp_workload.Generator.generate ~seed
          { Dbp_workload.Spec.default with Dbp_workload.Spec.count = 250 }
      in
      List.iter
        (fun policy ->
          let audited = Simulator.run ~audit:true ~policy instance in
          let plain = Simulator.run ~audit:false ~policy instance in
          if not (Test_engine.packing_equal audited plain) then
            Alcotest.failf "audited run diverges under %s (seed %Ld)"
              policy.Policy.name seed)
        (Algorithms.all ()))
    audit_seeds

let prop_audit_transparent =
  qcheck ~count:40 "audited runs bit-identical on random instances"
    (instance_gen ()) (fun instance ->
      List.for_all
        (fun policy ->
          Test_engine.packing_equal
            (Simulator.run ~audit:true ~policy instance)
            (Simulator.run ~audit:false ~policy instance))
        (Algorithms.all ()))

(* Crash storms through the injector, audited: every fail_bin /
   re-dispatch cycle passes the full invariant sweep, and the audited
   faulty packing matches the unaudited one. *)
let test_audit_under_faults () =
  let instance =
    Dbp_workload.Generator.generate ~seed:7L
      { Dbp_workload.Spec.default with Dbp_workload.Spec.count = 150 }
  in
  let horizon = Interval.hi (Instance.packing_period instance) in
  let plan = Dbp_faults.Fault_plan.poisson_crashes ~seed:5L ~rate:1.5 ~horizon in
  List.iter
    (fun policy ->
      let audited = Dbp_faults.Injector.run ~audit:true ~plan ~policy instance in
      let plain = Dbp_faults.Injector.run ~audit:false ~plan ~policy instance in
      if
        not
          (Test_engine.packing_equal audited.Dbp_faults.Injector.packing
             plain.Dbp_faults.Injector.packing)
      then
        Alcotest.failf "audited faulty run diverges under %s"
          policy.Policy.name)
    (Algorithms.all ())

(* ---- corruption is caught, by invariant family ---------------------- *)

let engine_with_items () =
  let t = Simulator.Online.create ~policy:First_fit.policy ~capacity:Rat.one () in
  ignore (Simulator.Online.arrive t ~now:Rat.zero ~size:(r 1 2) ~item_id:0);
  ignore (Simulator.Online.arrive t ~now:(r 1 2) ~size:(r 1 4) ~item_id:1);
  t

let bin0 t =
  match Simulator.Online.bin_handle t 0 with
  | Some b -> b
  | None -> Alcotest.fail "bin 0 missing"

let expect_violation ~family f =
  match f () with
  | () -> Alcotest.failf "corruption not caught (wanted a %s violation)" family
  | exception Audit.Audit_violation v ->
      Alcotest.(check string) "violation family" family v.Audit.check

let test_healthy_engine_passes () =
  let t = engine_with_items () in
  Simulator.Online.audit t

let test_corrupt_level () =
  let t = engine_with_items () in
  let b = bin0 t in
  b.Bin.level <- Rat.add b.Bin.level (r 1 8);
  expect_violation ~family:"bin" (fun () -> Simulator.Online.audit t)

let test_corrupt_view_cache () =
  let t = engine_with_items () in
  let b = bin0 t in
  let v = Bin.view b in
  b.Bin.view_cache <- Some { v with Bin.bin_level = Rat.zero };
  expect_violation ~family:"bin" (fun () -> Simulator.Online.audit t)

(* Closing a bin behind the index's back surfaces in the open-index
   walk (every reachable slot must hold an open bin), which runs
   before the store sweep. *)
let test_corrupt_closed_flag () =
  let t = engine_with_items () in
  let b = bin0 t in
  b.Bin.closed <- Some Rat.zero;
  expect_violation ~family:"open-index" (fun () -> Simulator.Online.audit t)

let test_corrupt_item_tracking () =
  let t = engine_with_items () in
  let b = bin0 t in
  (* Drop item 0 from the bin consistently (level, max_level and view
     cache all patched up) so only the simulator's item->bin tracking
     disagrees: the layered sweep must still catch it. *)
  Hashtbl.remove b.Bin.active 0;
  b.Bin.level <- r 1 4;
  b.Bin.max_level <- r 1 4;
  b.Bin.view_cache <- None;
  expect_violation ~family:"item-bin" (fun () -> Simulator.Online.audit t)

let test_corrupt_total_cost () =
  let instance =
    Instance.create ~capacity:Rat.one
      [
        Item.make ~id:0 ~size:(r 1 2) ~arrival:Rat.zero ~departure:Rat.one;
        Item.make ~id:1 ~size:(r 1 4) ~arrival:(r 1 2) ~departure:(r 3 2);
      ]
  in
  let packing = Simulator.run ~policy:First_fit.policy instance in
  Audit.check_packing packing;
  let tampered =
    { packing with Packing.total_cost = Rat.add packing.Packing.total_cost Rat.one }
  in
  expect_violation ~family:"cost-conservation" (fun () ->
      Audit.check_packing tampered)

(* ---- DBP_AUDIT environment toggle ----------------------------------- *)

let test_env_toggle () =
  let original = Sys.getenv_opt "DBP_AUDIT" in
  Unix.putenv "DBP_AUDIT" "1";
  Alcotest.(check bool) "1 enables" true (Audit.enabled_from_env ());
  Unix.putenv "DBP_AUDIT" "on";
  Alcotest.(check bool) "on enables" true (Audit.enabled_from_env ());
  Unix.putenv "DBP_AUDIT" "0";
  Alcotest.(check bool) "0 disables" false (Audit.enabled_from_env ());
  Unix.putenv "DBP_AUDIT" (Option.value original ~default:"")

let suite =
  [
    Alcotest.test_case "audited runs identical (generated)" `Quick
      test_audit_transparent;
    prop_audit_transparent;
    Alcotest.test_case "audited runs identical under faults" `Quick
      test_audit_under_faults;
    Alcotest.test_case "healthy engine passes" `Quick test_healthy_engine_passes;
    Alcotest.test_case "corrupted level caught" `Quick test_corrupt_level;
    Alcotest.test_case "corrupted view cache caught" `Quick
      test_corrupt_view_cache;
    Alcotest.test_case "corrupted closed flag caught" `Quick
      test_corrupt_closed_flag;
    Alcotest.test_case "corrupted item tracking caught" `Quick
      test_corrupt_item_tracking;
    Alcotest.test_case "tampered total cost caught" `Quick
      test_corrupt_total_cost;
    Alcotest.test_case "DBP_AUDIT env toggle" `Quick test_env_toggle;
  ]
