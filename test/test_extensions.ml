open Dbp_num
open Dbp_core
open Dbp_analysis
open Test_util

(* ---- Harmonic_fit ---------------------------------------------------- *)

let test_harmonic_classes () =
  let cls s = Harmonic_fit.class_of ~capacity:Rat.one ~classes:4 s in
  Alcotest.(check int) "3/4 -> class 1" 1 (cls (r 3 4));
  Alcotest.(check int) "just above 1/2 -> class 1" 1 (cls (r 51 100));
  Alcotest.(check int) "1/2 -> class 2" 2 (cls (r 1 2));
  Alcotest.(check int) "2/5 -> class 2" 2 (cls (r 2 5));
  Alcotest.(check int) "1/3 -> class 3" 3 (cls (r 1 3));
  Alcotest.(check int) "0.3 -> class 3" 3 (cls (r 3 10));
  Alcotest.(check int) "1/4 -> class 4" 4 (cls (r 1 4));
  Alcotest.(check int) "tiny -> last class" 4 (cls (r 1 100));
  Alcotest.(check bool) "rejects oversize" true
    (try
       ignore (cls (ri 2));
       false
     with Invalid_argument _ -> true)

let mk ?(size = r 1 2) a d =
  Item.make ~id:0 ~size ~arrival:(ri a) ~departure:(ri d)

let inst items = Instance.create ~capacity:Rat.one items

let test_harmonic_separates_classes () =
  (* A 0.6 (class 1) and a 0.3 (class 3) could share a bin; Harmonic
     refuses. *)
  let instance = inst [ mk ~size:(r 3 5) 0 5; mk ~size:(r 3 10) 0 5 ] in
  let packing = Simulator.run ~policy:(Harmonic_fit.policy ~classes:4) instance in
  assert_valid_packing packing;
  Alcotest.(check int) "two bins" 2 (Packing.bins_used packing)

let test_harmonic_packs_within_class () =
  (* Three 0.3 items are all class 3 and share one bin under FF. *)
  let instance =
    inst [ mk ~size:(r 3 10) 0 5; mk ~size:(r 3 10) 0 5; mk ~size:(r 3 10) 0 5 ]
  in
  let packing = Simulator.run ~policy:(Harmonic_fit.policy ~classes:4) instance in
  Alcotest.(check int) "one bin" 1 (Packing.bins_used packing)

let test_harmonic_validation () =
  Alcotest.(check bool) "classes < 2" true
    (try
       ignore (Harmonic_fit.policy ~classes:1);
       false
     with Invalid_argument _ -> true)

(* ---- Stats ------------------------------------------------------------ *)

let test_stats_known_values () =
  let s = Stats.summarise [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check int) "count" 4 s.Stats.count;
  Alcotest.(check (float 1e-9)) "mean" 2.5 s.Stats.mean;
  Alcotest.(check (float 1e-9)) "median" 2.5 s.Stats.median;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Stats.minimum;
  Alcotest.(check (float 1e-9)) "max" 4.0 s.Stats.maximum;
  Alcotest.(check (float 1e-6)) "stddev" 1.2909944487 s.Stats.stddev;
  let single = Stats.summarise [ 7.0 ] in
  Alcotest.(check (float 1e-9)) "single stddev 0" 0.0 single.Stats.stddev;
  Alcotest.(check (float 1e-9)) "single ci 0" 0.0 single.Stats.ci95_half_width

let test_stats_quantile () =
  let xs = [ 10.0; 20.0; 30.0; 40.0; 50.0 ] in
  Alcotest.(check (float 1e-9)) "q0" 10.0 (Stats.quantile xs ~q:0.0);
  Alcotest.(check (float 1e-9)) "q1" 50.0 (Stats.quantile xs ~q:1.0);
  Alcotest.(check (float 1e-9)) "median" 30.0 (Stats.quantile xs ~q:0.5);
  Alcotest.(check (float 1e-9)) "interpolated" 15.0 (Stats.quantile xs ~q:0.125);
  Alcotest.(check bool) "empty rejected" true
    (try
       ignore (Stats.summarise []);
       false
     with Invalid_argument _ -> true)

(* Regression: the interpolation blend [x *. 1.0 +. y *. 0.0] is NaN
   whenever the unweighted neighbour is infinite, so [quantile ~q:0.0]
   of a series with an infinite maximum came back NaN instead of the
   minimum.  Endpoints must be exact order statistics, even when the
   other end of the array is not finite. *)
let test_stats_quantile_endpoints () =
  let check_q name want xs q =
    Alcotest.(check (float 0.0)) name want (Stats.quantile xs ~q)
  in
  check_q "single q0" 5.0 [ 5.0 ] 0.0;
  check_q "single q0.5" 5.0 [ 5.0 ] 0.5;
  check_q "single q1" 5.0 [ 5.0 ] 1.0;
  check_q "pair q0" 1.0 [ 3.0; 1.0 ] 0.0;
  check_q "pair q0.5" 2.0 [ 3.0; 1.0 ] 0.5;
  check_q "pair q1" 3.0 [ 3.0; 1.0 ] 1.0;
  check_q "infinite max, q0 is the min" 1.0 [ 1.0; infinity ] 0.0;
  check_q "infinite max, q1 is the max" infinity [ 1.0; infinity ] 1.0;
  check_q "infinite min, q1 is the max" 1.0 [ neg_infinity; 1.0 ] 1.0;
  (* An interior position landing exactly on an element interpolates
     with weight zero: that neighbour must not poison the result. *)
  check_q "exact interior position" 2.0 [ 1.0; 2.0; infinity ] 0.5

let test_stats_student_t () =
  (* small-n confidence intervals use Student-t, not z = 1.96 *)
  Alcotest.(check (float 1e-9)) "df 1" 12.706 (Stats.t_critical_95 ~df:1);
  Alcotest.(check (float 1e-9)) "df 4" 2.776 (Stats.t_critical_95 ~df:4);
  Alcotest.(check (float 1e-9)) "df 19" 2.093 (Stats.t_critical_95 ~df:19);
  Alcotest.(check (float 1e-9)) "df 30" 1.96 (Stats.t_critical_95 ~df:30);
  Alcotest.(check bool) "df 0 rejected" true
    (try
       ignore (Stats.t_critical_95 ~df:0);
       false
     with Invalid_argument _ -> true);
  (* n = 5: half-width = t_4 * sd / sqrt 5 exactly *)
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  let s = Stats.summarise xs in
  Alcotest.(check (float 1e-9)) "n=5 half-width"
    (2.776 *. s.Stats.stddev /. sqrt 5.0)
    s.Stats.ci95_half_width;
  (* n >= 30 falls back to the normal approximation *)
  let many = List.init 40 (fun i -> float_of_int i) in
  let s40 = Stats.summarise many in
  Alcotest.(check (float 1e-9)) "n=40 half-width"
    (1.96 *. s40.Stats.stddev /. sqrt 40.0)
    s40.Stats.ci95_half_width

(* one pass over one sorted array must agree with naive recomputation *)
let test_stats_single_pass_vs_brute () =
  let xs = [ 3.5; -2.0; 7.25; 0.0; 3.5; -2.0; 11.0; 0.5 ] in
  let s = Stats.summarise xs in
  let n = List.length xs in
  let brute_mean = List.fold_left ( +. ) 0.0 xs /. float_of_int n in
  let brute_sd =
    sqrt
      (List.fold_left (fun acc x -> acc +. ((x -. brute_mean) ** 2.0)) 0.0 xs
      /. float_of_int (n - 1))
  in
  Alcotest.(check (float 1e-9)) "mean vs brute" brute_mean s.Stats.mean;
  Alcotest.(check (float 1e-9)) "stddev vs brute" brute_sd s.Stats.stddev;
  Alcotest.(check (float 1e-9)) "min vs brute"
    (List.fold_left Float.min infinity xs)
    s.Stats.minimum;
  Alcotest.(check (float 1e-9)) "max vs brute"
    (List.fold_left Float.max neg_infinity xs)
    s.Stats.maximum;
  (* the sorted-array entry points agree with the list wrappers *)
  let sorted = Array.of_list (List.sort Float.compare xs) in
  Alcotest.(check (float 1e-9)) "summarise_sorted mean" s.Stats.mean
    (Stats.summarise_sorted sorted).Stats.mean;
  Alcotest.(check (float 1e-9)) "quantile_sorted p75"
    (Stats.quantile xs ~q:0.75)
    (Stats.quantile_sorted sorted ~q:0.75)

let stats_props =
  let open QCheck2 in
  let xs_gen =
    Gen.(list_size (int_range 1 40) (map float_of_int (int_range (-50) 50)))
  in
  [
    qcheck "mean within [min, max]" xs_gen (fun xs ->
        let s = Stats.summarise xs in
        s.Stats.minimum <= s.Stats.mean +. 1e-9
        && s.Stats.mean <= s.Stats.maximum +. 1e-9);
    qcheck "median within [min, max]" xs_gen (fun xs ->
        let s = Stats.summarise xs in
        s.Stats.minimum <= s.Stats.median && s.Stats.median <= s.Stats.maximum);
    qcheck "quantile monotone" xs_gen (fun xs ->
        Stats.quantile xs ~q:0.25 <= Stats.quantile xs ~q:0.75 +. 1e-9);
    qcheck "stddev non-negative" xs_gen (fun xs -> Stats.stddev xs >= 0.0);
  ]

(* ---- Timeline rendering ------------------------------------------------ *)

let test_timeline_render () =
  let instance = inst [ mk 0 4; mk ~size:(r 2 3) 1 3; mk 5 6 ] in
  let packing = Simulator.run ~policy:First_fit.policy instance in
  let rendered = Timeline_render.render ~width:40 packing in
  Alcotest.(check bool) "mentions policy" true
    (contains ~sub:"first_fit" rendered);
  Alcotest.(check bool) "row per bin" true
    (List.length (String.split_on_char '\n' rendered)
    >= Packing.bins_used packing + 2);
  Alcotest.(check bool) "has fill glyphs" true
    (contains ~sub:"#" rendered || contains ~sub:"=" rendered
    || contains ~sub:"-" rendered)

(* ---- adversarial policy fuzz: the simulator's invariants hold for ANY
   policy that makes valid decisions ------------------------------------ *)

let chaotic_policy ~seed =
  let open Dbp_rand in
  Policy.make ~name:"chaos" (fun ~capacity:_ ->
      let rng = Splitmix64.create seed in
      {
        Policy.on_arrival =
          (fun ~now:_ ~bins ~size ~item_id:_ ->
            (* sometimes open a new bin even when something fits;
               sometimes pick a random fitting bin *)
            let fitting = Fit.fitting bins ~size in
            if fitting = [] || Splitmix64.next_bool rng then
              Policy.New_bin "chaos"
            else
              let n = List.length fitting in
              Policy.Existing
                (List.nth fitting (Splitmix64.next_int rng n)).Bin.bin_id);
        on_departure = Policy.no_departure_handler;
        persistence = Policy.Volatile;
      })

let fuzz_props =
  [
    qcheck ~count:150 "chaotic policies still yield valid packings"
      (instance_gen ~max_items:25 ()) (fun instance ->
        let packing =
          Simulator.run ~policy:(chaotic_policy ~seed:5L) instance
        in
        Packing.validate packing = Ok ());
    qcheck ~count:100 "chaotic cost within (b.2)-(b.3) bounds"
      (instance_gen ~max_items:20 ()) (fun instance ->
        let packing =
          Simulator.run ~policy:(chaotic_policy ~seed:6L) instance
        in
        Rat.(packing.Packing.total_cost >= Instance.span instance)
        && Rat.(
             packing.Packing.total_cost
             <= Rat.sum
                  (List.map Item.length
                     (Array.to_list (Instance.items instance)))));
    qcheck ~count:100 "harmonic never mixes classes"
      (instance_gen ~max_items:25 ()) (fun instance ->
        let packing =
          Simulator.run ~policy:(Harmonic_fit.policy ~classes:4) instance
        in
        Array.for_all
          (fun (b : Packing.bin_record) ->
            let classes =
              List.map
                (fun id ->
                  Harmonic_fit.class_of
                    ~capacity:(Instance.capacity instance)
                    ~classes:4
                    (Instance.item instance id).Item.size)
                b.item_ids
              |> List.sort_uniq compare
            in
            List.length classes <= 1)
          packing.Packing.bins);
    qcheck ~count:100 "class-i bins hold at most i concurrent items (i<4)"
      (instance_gen ~max_items:25 ()) (fun instance ->
        let packing =
          Simulator.run ~policy:(Harmonic_fit.policy ~classes:4) instance
        in
        (* check at every event time *)
        List.for_all
          (fun t ->
            Array.for_all
              (fun (b : Packing.bin_record) ->
                let active =
                  List.filter
                    (fun id -> Item.active_at (Instance.item instance id) t)
                    b.item_ids
                in
                match active with
                | [] -> true
                | id :: _ ->
                    let cls =
                      Harmonic_fit.class_of
                        ~capacity:(Instance.capacity instance)
                        ~classes:4
                        (Instance.item instance id).Item.size
                    in
                    cls >= 4 || List.length active <= cls)
              packing.Packing.bins)
          (Instance.event_times instance));
  ]

let suite =
  [
    Alcotest.test_case "harmonic class boundaries" `Quick test_harmonic_classes;
    Alcotest.test_case "harmonic separates classes" `Quick
      test_harmonic_separates_classes;
    Alcotest.test_case "harmonic packs within class" `Quick
      test_harmonic_packs_within_class;
    Alcotest.test_case "harmonic validation" `Quick test_harmonic_validation;
    Alcotest.test_case "stats known values" `Quick test_stats_known_values;
    Alcotest.test_case "stats quantile" `Quick test_stats_quantile;
    Alcotest.test_case "stats quantile endpoints" `Quick
      test_stats_quantile_endpoints;
    Alcotest.test_case "stats student-t" `Quick test_stats_student_t;
    Alcotest.test_case "stats single pass vs brute" `Quick
      test_stats_single_pass_vs_brute;
    Alcotest.test_case "timeline render" `Quick test_timeline_render;
  ]
  @ stats_props @ fuzz_props
