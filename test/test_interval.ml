open Dbp_num
open Test_util

let iv a b = Interval.make (r a 1) (r b 1)
let ivr = Interval.make

let test_basics () =
  let i = ivr (r 1 2) (r 5 2) in
  check_rat "length" (ri 2) (Interval.length i);
  Alcotest.(check bool) "contains lo" true (Interval.contains i (r 1 2));
  Alcotest.(check bool) "contains hi" true (Interval.contains i (r 5 2));
  Alcotest.(check bool) "contains mid" true (Interval.contains i Rat.one);
  Alcotest.(check bool) "not contains" false (Interval.contains i (ri 3));
  Alcotest.(check bool) "empty" true (Interval.is_empty (iv 2 2));
  Alcotest.(check bool) "not empty" false (Interval.is_empty i);
  Alcotest.check_raises "hi < lo" (Invalid_argument "Interval.make: hi < lo")
    (fun () -> ignore (iv 3 2))

let test_overlap () =
  Alcotest.(check bool) "closed touch overlaps" true
    (Interval.overlaps (iv 0 1) (iv 1 2));
  Alcotest.(check bool) "open touch does not" false
    (Interval.overlaps_open (iv 0 1) (iv 1 2));
  Alcotest.(check bool) "proper overlap" true
    (Interval.overlaps_open (iv 0 2) (iv 1 3));
  Alcotest.(check bool) "disjoint" false (Interval.overlaps (iv 0 1) (iv 2 3));
  Alcotest.(check bool) "contained" true
    (Interval.contains_interval (iv 0 10) (iv 2 3));
  Alcotest.(check bool) "not contained" false
    (Interval.contains_interval (iv 0 10) (iv 2 30))

let test_intersect_hull () =
  (match Interval.intersect (iv 0 2) (iv 1 3) with
  | Some i -> Alcotest.check interval "intersect" (iv 1 2) i
  | None -> Alcotest.fail "expected overlap");
  (match Interval.intersect (iv 0 1) (iv 1 2) with
  | Some i -> Alcotest.check interval "point intersect" (iv 1 1) i
  | None -> Alcotest.fail "expected point");
  Alcotest.(check (option interval))
    "no intersect" None
    (Interval.intersect (iv 0 1) (iv 2 3));
  Alcotest.check interval "hull" (iv 0 3) (Interval.hull (iv 0 1) (iv 2 3));
  Alcotest.check interval "shift" (iv 2 3) (Interval.shift (iv 0 1) (ri 2))

let test_merge_union () =
  let merged = Interval.merge_overlapping [ iv 3 4; iv 0 1; iv 1 2 ] in
  Alcotest.(check (list interval)) "merge touch" [ iv 0 2; iv 3 4 ] merged;
  check_rat "union measure" (ri 3)
    (Interval.union_measure [ iv 3 4; iv 0 1; iv 1 2 ]);
  check_rat "union of nested" (ri 4)
    (Interval.union_measure [ iv 0 4; iv 1 2 ]);
  check_rat "union empty list" Rat.zero (Interval.union_measure [])

(* The Figure 1 example shape: items on [0,2], [1,3], [5,6]: span 4. *)
let test_figure1_span () =
  check_rat "figure 1 span" (ri 4)
    (Interval.union_measure [ iv 0 2; iv 1 3; iv 5 6 ])

let interval_gen =
  QCheck2.Gen.(
    map2
      (fun lo len -> Interval.make lo (Rat.add lo len))
      (rat_gen ~lo_num:(-20) ~hi_num:20 ~max_den:6 ())
      (pos_rat_gen ~hi_num:20 ~max_den:6 ()))

let prop_tests =
  let open QCheck2 in
  [
    qcheck "union measure <= sum of lengths"
      (Gen.list_size (Gen.int_range 0 12) interval_gen)
      (fun ivs ->
        Rat.(
          Interval.union_measure ivs
          <= Rat.sum (List.map Interval.length ivs)));
    qcheck "merge produces disjoint sorted"
      (Gen.list_size (Gen.int_range 0 12) interval_gen)
      (fun ivs ->
        let merged = Interval.merge_overlapping ivs in
        let rec ok = function
          | a :: (b :: _ as rest) ->
              Rat.(Interval.hi a < Interval.lo b) && ok rest
          | _ -> true
        in
        ok merged);
    qcheck "merge preserves measure"
      (Gen.list_size (Gen.int_range 0 12) interval_gen)
      (fun ivs ->
        Rat.equal
          (Interval.union_measure ivs)
          (Rat.sum (List.map Interval.length (Interval.merge_overlapping ivs))));
    qcheck "intersect commutative" (Gen.pair interval_gen interval_gen)
      (fun (a, b) ->
        match (Interval.intersect a b, Interval.intersect b a) with
        | Some x, Some y -> Interval.equal x y
        | None, None -> true
        | _ -> false);
    qcheck "overlap iff intersect" (Gen.pair interval_gen interval_gen)
      (fun (a, b) ->
        Interval.overlaps a b = Option.is_some (Interval.intersect a b));
  ]

let suite =
  [
    Alcotest.test_case "basics" `Quick test_basics;
    Alcotest.test_case "overlap" `Quick test_overlap;
    Alcotest.test_case "intersect/hull" `Quick test_intersect_hull;
    Alcotest.test_case "merge/union" `Quick test_merge_union;
    Alcotest.test_case "figure 1 span" `Quick test_figure1_span;
  ]
  @ prop_tests

(* ---- measure_difference ------------------------------------------------ *)

let test_measure_difference () =
  check_rat "disjoint" (ri 2)
    (Interval.measure_difference [ iv 0 2 ] [ iv 5 6 ]);
  check_rat "fully covered" Rat.zero
    (Interval.measure_difference [ iv 1 2 ] [ iv 0 4 ]);
  check_rat "partial" (ri 1) (Interval.measure_difference [ iv 0 2 ] [ iv 1 5 ]);
  check_rat "self-overlapping input" (ri 1)
    (Interval.measure_difference [ iv 0 2; iv 1 2 ] [ iv 1 5 ]);
  check_rat "empty minuend" Rat.zero (Interval.measure_difference [] [ iv 0 1 ]);
  check_rat "empty subtrahend" (ri 3)
    (Interval.measure_difference [ iv 0 2; iv 4 5 ] [])

let diff_props =
  let open QCheck2 in
  let ivs = Gen.list_size (Gen.int_range 0 8) interval_gen in
  [
    qcheck "difference bounded by measure" (Gen.pair ivs ivs) (fun (a, b) ->
        let d = Interval.measure_difference a b in
        Rat.(d >= Rat.zero) && Rat.(d <= Interval.union_measure a));
    qcheck "difference + overlap = measure" (Gen.pair ivs ivs) (fun (a, b) ->
        (* measure(A\B) = measure(A) - measure(A n B), and A n B's
           measure equals measure(A) + measure(B) - measure(A u B) *)
        let m_a = Interval.union_measure a and m_b = Interval.union_measure b in
        let m_union = Interval.union_measure (a @ b) in
        let m_inter = Rat.sub (Rat.add m_a m_b) m_union in
        Rat.equal (Interval.measure_difference a b) (Rat.sub m_a m_inter));
    qcheck "difference with self is zero" ivs (fun a ->
        Rat.is_zero (Interval.measure_difference a a));
  ]

let suite = suite @ [ Alcotest.test_case "measure difference" `Quick test_measure_difference ] @ diff_props
