open Dbp_num
open Dbp_core
open Dbp_clairvoyant
open Test_util

let mk ?(size = r 1 2) a d =
  Item.make ~id:0 ~size ~arrival:(ri a) ~departure:(ri d)

let inst items = Instance.create ~capacity:Rat.one items

let test_predictor_exact () =
  let instance = inst [ mk 0 3; mk 1 5 ] in
  let p = Predictor.build Predictor.Exact instance in
  check_rat "exact departures" (ri 3) (Predictor.predicted_departure p 0);
  check_rat "exact departures 2" (ri 5) (Predictor.predicted_departure p 1);
  check_rat "zero error" Rat.zero (Predictor.mean_absolute_error p instance)

let test_predictor_scaled () =
  let instance = inst [ mk 0 2 ] in
  let p = Predictor.build (Predictor.Scaled { factor = Rat.two }) instance in
  (* length 2 doubled: predicted departure 0 + 4 *)
  check_rat "scaled" (ri 4) (Predictor.predicted_departure p 0);
  check_rat "error 2" Rat.two (Predictor.mean_absolute_error p instance)

let test_predictor_oblivious () =
  let instance = inst [ mk 0 2; mk 0 6 ] in
  let p = Predictor.build Predictor.Oblivious instance in
  (* everyone gets the max length, 6 *)
  check_rat "short overpredicted" (ri 6) (Predictor.predicted_departure p 0);
  check_rat "long exact" (ri 6) (Predictor.predicted_departure p 1)

let test_predictor_noisy_positive () =
  let instance =
    inst (List.init 50 (fun i -> mk i (i + 1 + (i mod 3))))
  in
  let p = Predictor.build ~seed:5L (Predictor.Noisy { sigma = 1.0 }) instance in
  Array.iteri
    (fun id (item : Item.t) ->
      if Rat.(Predictor.predicted_departure p id <= item.arrival) then
        Alcotest.failf "non-positive predicted duration for %d" id)
    (Instance.items instance);
  (* deterministic per seed *)
  let p' = Predictor.build ~seed:5L (Predictor.Noisy { sigma = 1.0 }) instance in
  check_rat "deterministic" (Predictor.predicted_departure p 7)
    (Predictor.predicted_departure p' 7)

(* The showcase scenario: two long items and two short ones.  Lifetime-
   aware packing pairs long with long; First Fit pairs long with short
   and keeps two bins open for the long haul. *)
let showcase =
  [
    mk ~size:(r 1 2) 0 10;  (* long *)
    mk ~size:(r 1 2) 0 2;   (* short - FF pairs it with the long one *)
    mk ~size:(r 1 2) 1 10;  (* long *)
    mk ~size:(r 1 2) 1 3;   (* short *)
  ]

let test_aligned_beats_ff_on_showcase () =
  let instance = inst showcase in
  let ff = Simulator.run ~policy:First_fit.policy instance in
  let p = Predictor.build Predictor.Exact instance in
  let aligned = Simulator.run ~policy:(Duration_fit.aligned_fit p) instance in
  assert_valid_packing aligned;
  (* FF: bin0 = {long0, short1}, bin1 = {long2, short3}: both live to 10
     -> cost 10 + 9 = 19.  Aligned (threshold 1/2): short1 misaligns
     with long0 by 8 > 1 -> own bin; long2 joins long0 (score 1 <= 5);
     short3 aligns with the shorts' bin (score 1 <= 1) and joins it.
     Bins {long0,long2} [0,10] and {short1,short3} [0,3]: cost 13. *)
  check_rat "ff cost" (ri 19) ff.Packing.total_cost;
  check_rat "aligned cost" (ri 13) aligned.Packing.total_cost;
  Alcotest.(check bool) "aligned is deliberately not any-fit" true
    (aligned.Packing.any_fit_violations > 0)

let test_least_extension_on_showcase () =
  let instance = inst showcase in
  let p = Predictor.build Predictor.Exact instance in
  let ext =
    Simulator.run ~policy:(Duration_fit.least_extension_fit p) instance
  in
  assert_valid_packing ext;
  (* least-extension nests the shorts into the long bins for free:
     {long0, short1... wait short1 arrives at 0 with long0: extension
     of joining long0's bin is 0 (pred 2 <= 10): cost = two bins
     {long0 short1} {long2 short3}? No: at t=0 item1 (short) joins
     bin0 (extension 0). At t=1 long2: extension into bin0 = 0 if it
     fits - it does not (1/2+1/2 full). New bin. short3 joins bin1
     (extension 0). Cost 10 + 9 = 19?  Hmm - shorts nest for free, the
     cost equals FF here; the win shows on the aligned variant. *)
  Alcotest.(check bool) "valid and bounded" true
    Rat.(ext.Packing.total_cost <= Dbp_opt.Bounds.naive_upper_bound instance)

let prop_tests =
  [
    qcheck ~count:120 "clairvoyant policies produce valid packings"
      (instance_gen ~max_items:25 ()) (fun instance ->
        let p = Predictor.build Predictor.Exact instance in
        List.for_all
          (fun policy ->
            Packing.validate (Simulator.run ~policy instance) = Ok ())
          [ Duration_fit.aligned_fit p; Duration_fit.least_extension_fit p ]);
    qcheck ~count:100 "noisy predictions never crash the policies"
      (instance_gen ~max_items:20 ()) (fun instance ->
        let p =
          Predictor.build ~seed:11L (Predictor.Noisy { sigma = 2.0 }) instance
        in
        let packing =
          Simulator.run ~policy:(Duration_fit.aligned_fit p) instance
        in
        Packing.validate packing = Ok ());
    qcheck ~count:100 "MAE of exact predictor is zero"
      (instance_gen ~max_items:15 ()) (fun instance ->
        Rat.is_zero
          (Predictor.mean_absolute_error
             (Predictor.build Predictor.Exact instance)
             instance));
    qcheck ~count:100 "costs stay within the universal bounds"
      (instance_gen ~max_items:20 ()) (fun instance ->
        let p = Predictor.build Predictor.Oblivious instance in
        let packing =
          Simulator.run ~policy:(Duration_fit.least_extension_fit p) instance
        in
        Rat.(packing.Packing.total_cost >= Instance.span instance)
        && Rat.(
             packing.Packing.total_cost
             <= Dbp_opt.Bounds.naive_upper_bound instance));
  ]

let suite =
  [
    Alcotest.test_case "exact predictor" `Quick test_predictor_exact;
    Alcotest.test_case "scaled predictor" `Quick test_predictor_scaled;
    Alcotest.test_case "oblivious predictor" `Quick test_predictor_oblivious;
    Alcotest.test_case "noisy predictor sanity" `Quick
      test_predictor_noisy_positive;
    Alcotest.test_case "aligned beats FF on the showcase" `Quick
      test_aligned_beats_ff_on_showcase;
    Alcotest.test_case "least extension on the showcase" `Quick
      test_least_extension_on_showcase;
  ]
  @ prop_tests

(* ---- Duration_class_fit ------------------------------------------------ *)

let test_duration_classes () =
  let cls d = Duration_class_fit.class_of ~base:Rat.one ~duration:d in
  Alcotest.(check int) "1 -> 0" 0 (cls Rat.one);
  Alcotest.(check int) "3/2 -> 0" 0 (cls (r 3 2));
  Alcotest.(check int) "2 -> 1" 1 (cls Rat.two);
  Alcotest.(check int) "5 -> 2" 2 (cls (ri 5));
  Alcotest.(check int) "8 -> 3" 3 (cls (ri 8));
  Alcotest.(check int) "1/2 -> -1" (-1) (cls (r 1 2));
  Alcotest.(check int) "1/3 -> -2" (-2) (cls (r 1 3));
  Alcotest.(check bool) "zero duration rejected" true
    (try
       ignore (cls Rat.zero);
       false
     with Invalid_argument _ -> true)

let test_duration_class_optimal_on_fragmentation () =
  let instance = Dbp_workload.Patterns.fragmentation ~k:5 ~mu:(ri 8) in
  let p = Predictor.build Predictor.Exact instance in
  let packing =
    Simulator.run ~policy:(Duration_class_fit.policy p) instance
  in
  assert_valid_packing packing;
  let ratio = Dbp_analysis.Ratio.measure packing in
  check_rat "optimal on the adversary" Rat.one
    (Dbp_analysis.Ratio.value_exn ratio);
  let ff = Simulator.run ~policy:First_fit.policy instance in
  Alcotest.(check bool) "FF is forced high" true
    Rat.(ff.Packing.total_cost > Rat.mul_int packing.Packing.total_cost 2)

let test_duration_class_never_mixes () =
  let instance = Dbp_workload.Patterns.sawtooth ~teeth:4 ~per_tooth:6 ~mu:(ri 5) in
  let p = Predictor.build Predictor.Exact instance in
  let packing = Simulator.run ~policy:(Duration_class_fit.policy p) instance in
  Array.iter
    (fun (b : Packing.bin_record) ->
      let classes =
        List.map
          (fun id ->
            let item = Instance.item instance id in
            Duration_class_fit.class_of ~base:Rat.one
              ~duration:(Item.length item))
          b.Packing.item_ids
        |> List.sort_uniq compare
      in
      if List.length classes > 1 then
        Alcotest.failf "bin %d mixes duration classes" b.Packing.bin_id)
    packing.Packing.bins

let duration_class_props =
  [
    qcheck ~count:100 "duration-class packings always valid"
      (instance_gen ~max_items:25 ()) (fun instance ->
        let p = Predictor.build Predictor.Exact instance in
        Packing.validate
          (Simulator.run ~policy:(Duration_class_fit.policy p) instance)
        = Ok ());
    qcheck ~count:100 "class_of is monotone in duration"
      QCheck2.Gen.(pair (int_range 1 200) (int_range 1 200))
      (fun (a, b) ->
        let cls n =
          Duration_class_fit.class_of ~base:Rat.one ~duration:(Rat.make n 10)
        in
        a > b || cls a <= cls b);
  ]

let suite =
  suite
  @ [
      Alcotest.test_case "duration classes" `Quick test_duration_classes;
      Alcotest.test_case "duration-class optimal on the adversary" `Quick
        test_duration_class_optimal_on_fragmentation;
      Alcotest.test_case "duration classes never mix" `Quick
        test_duration_class_never_mixes;
    ]
  @ duration_class_props
