(* Property tests for the fixed-point fast path (lib/num/fixed.ml):
   the engine's bit-exactness argument rests on [of_rat] being
   exact-or-refused and [to_rat] renormalising through [Rat.make], so
   those contracts are pinned here with QCheck over random grids. *)

open Dbp_num
open Test_util

let scale_of_den_exn d =
  match Fixed.scale_of_den d with
  | Some s -> s
  | None -> Alcotest.failf "scale_of_den %d refused" d

(* A random grid denominator and an on-grid rational: den divides D
   by construction (Rat.make may reduce it further, which stays on
   the grid). *)
let grid_gen =
  QCheck2.Gen.(
    int_range 1 720 >>= fun d ->
    map
      (fun n -> (d, Rat.make n d))
      (int_range (-100_000) 100_000))

(* An arbitrary rational, same grid: off-grid inputs arise whenever
   the generated den does not divide D. *)
let any_gen =
  QCheck2.Gen.(
    map2
      (fun d r -> (d, r))
      (int_range 1 720)
      (rat_gen ~lo_num:(-10_000) ~hi_num:10_000 ~max_den:997 ()))

let pair_grid_gen =
  QCheck2.Gen.(
    grid_gen >>= fun (d, a) ->
    map (fun n -> (d, a, Rat.make n d)) (int_range (-100_000) 100_000))

let test_scales () =
  Alcotest.(check int) "unit den" 1 (Fixed.den Fixed.unit);
  Alcotest.(check bool) "den 0 refused" true (Fixed.scale_of_den 0 = None);
  Alcotest.(check bool) "den < 0 refused" true (Fixed.scale_of_den (-3) = None);
  Alcotest.(check bool)
    "max_den accepted" true
    (Fixed.scale_of_den Fixed.max_den <> None);
  Alcotest.(check bool)
    "beyond max_den refused" true
    (Fixed.scale_of_den (Fixed.max_den + 1) = None);
  (* [including] is an lcm chase: 1/4 and 1/6 land on the 1/12 grid. *)
  (match Fixed.including Fixed.unit (r 1 4) with
  | None -> Alcotest.fail "including 1/4 refused"
  | Some s -> (
      Alcotest.(check int) "lcm(1,4)" 4 (Fixed.den s);
      match Fixed.including s (r 1 6) with
      | None -> Alcotest.fail "including 1/6 refused"
      | Some s -> Alcotest.(check int) "lcm(4,6)" 12 (Fixed.den s)));
  (* The chase refuses rather than rounds once the lcm leaves range. *)
  Alcotest.(check bool)
    "oversized lcm refused" true
    (Fixed.including
       (scale_of_den_exn Fixed.max_den)
       (r 1 (Fixed.max_den - 1))
    = None)

let test_overflow_edges () =
  let s = Fixed.unit in
  Alcotest.(check bool)
    "bound admitted" true
    (Fixed.of_rat s (ri Fixed.bound) = Some Fixed.bound);
  Alcotest.(check bool)
    "bound+1 refused" true
    (Fixed.of_rat s (ri (Fixed.bound + 1)) = None);
  Alcotest.(check bool)
    "-bound admitted" true
    (Fixed.of_rat s (ri (-Fixed.bound)) = Some (-Fixed.bound));
  Alcotest.(check bool)
    "-(bound+1) refused" true
    (Fixed.of_rat s (ri (-(Fixed.bound + 1))) = None);
  (* Two admitted values can always be added; the checked ops only
     raise on genuinely unrepresentable sums. *)
  Alcotest.(check int)
    "bound + bound" (2 * Fixed.bound)
    (Fixed.add Fixed.bound Fixed.bound);
  Alcotest.check_raises "add wraps" Fixed.Overflow (fun () ->
      ignore (Fixed.add max_int 1));
  Alcotest.check_raises "sub wraps" Fixed.Overflow (fun () ->
      ignore (Fixed.sub min_int 1))

let prop_tests =
  [
    qcheck ~count:2000 "of_rat/to_rat round-trips on the grid" grid_gen
      (fun (d, a) ->
        let s = scale_of_den_exn d in
        match Fixed.of_rat s a with
        | None -> Alcotest.failf "on-grid %s refused" (Rat.to_string a)
        | Some v ->
            let back = Fixed.to_rat s v in
            (* Bit-exact: same canonical num/den, not just equal value. *)
            Rat.equal back a
            && Rat.num back = Rat.num a
            && Rat.den back = Rat.den a);
    qcheck ~count:2000 "of_rat refuses exactly the off-grid/oversized" any_gen
      (fun (d, a) ->
        let s = scale_of_den_exn d in
        let on_grid = d mod Rat.den a = 0 in
        let scaled_small =
          on_grid && abs (Rat.num a * (d / Rat.den a)) <= Fixed.bound
        in
        (Fixed.of_rat s a <> None) = scaled_small
        && Fixed.fits s a = scaled_small);
    qcheck ~count:10_000 "add/sub/compare agree with Rat" pair_grid_gen
      (fun (d, a, b) ->
        let s = scale_of_den_exn d in
        match (Fixed.of_rat s a, Fixed.of_rat s b) with
        | Some va, Some vb ->
            Rat.equal (Fixed.to_rat s (Fixed.add va vb)) (Rat.add a b)
            && Rat.equal (Fixed.to_rat s (Fixed.sub va vb)) (Rat.sub a b)
            && Fixed.compare va vb = Rat.compare a b
            && Fixed.equal va vb = Rat.equal a b
        | _ -> false);
  ]

let suite =
  [
    Alcotest.test_case "scales and lcm chase" `Quick test_scales;
    Alcotest.test_case "overflow edges" `Quick test_overflow_edges;
  ]
  @ prop_tests
