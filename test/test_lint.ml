(* Fixture tests for the lint pass (R1..R7): every rule gets a
   must-flag / must-not-flag pair, fed through [Lint.run_sources] with
   paths mirroring the repo layout (the rules scope on path infixes
   like "lib/core/", so fixture paths reproduce the real scoping).
   Plus baseline bookkeeping, exit codes and the parse-failure path. *)

open Dbp_lint

let rules_fired path source =
  (Lint.run_sources [ (path, source) ]).Lint.findings
  |> List.map (fun f -> f.Finding.rule)
  |> List.sort_uniq String.compare

let check_fires rule path source =
  Alcotest.(check bool)
    (Printf.sprintf "%s fires at %s" rule path)
    true
    (List.mem rule (rules_fired path source))

let check_silent rule path source =
  Alcotest.(check bool)
    (Printf.sprintf "%s silent at %s" rule path)
    false
    (List.mem rule (rules_fired path source))

(* ---- R1: no floats in the exact-arithmetic libraries ---------------- *)

let test_r1 () =
  check_fires "R1" "lib/core/fixture.ml" "let x = 1.5\n";
  check_fires "R1" "lib/core/fixture.ml" "let f a b = a +. b\n";
  check_fires "R1" "lib/adversary/fixture.ml" "let g x = Float.abs x\n";
  check_fires "R1" "lib/analysis/fixture.ml" "let h (x : float) = x\n";
  check_fires "R1" "lib/core/fixture.ml" "let s x = sqrt x\n";
  (* floats are legitimate outside the exact libraries *)
  check_silent "R1" "lib/workload/fixture.ml" "let x = 1.5\n";
  check_silent "R1" "bin/fixture.ml" "let x = 1.5\n";
  (* the display-only analysis modules are exempt *)
  check_silent "R1" "lib/analysis/stats.ml" "let x = 1.5\n";
  (* converting *out* of the exact world is the sanctioned direction *)
  check_silent "R1" "lib/core/fixture.ml" "let f x = Rat.to_float x\n"

(* ---- R2: no float-literal equality, anywhere ------------------------ *)

let test_r2 () =
  check_fires "R2" "lib/workload/fixture.ml" "let bad r = r = 0.0\n";
  check_fires "R2" "bin/fixture.ml" "let bad r = r <> 1.5\n";
  check_silent "R2" "lib/workload/fixture.ml" "let ok r = r <= 0.0\n";
  check_silent "R2" "lib/workload/fixture.ml" "let ok r = Float.equal r 0.0\n"

(* ---- R3: no polymorphic compare where a Rat.t could flow ------------ *)

let test_r3 () =
  check_fires "R3" "lib/opt/fixture.ml" "let f a = a = Rat.zero\n";
  check_fires "R3" "lib/opt/fixture.ml" "let f xs = List.sort compare xs\n";
  check_fires "R3" "lib/opt/fixture.ml" "let f a b = Stdlib.compare a b\n";
  check_fires "R3" "lib/opt/fixture.ml" "let h x = Hashtbl.hash x\n";
  (* inside Rat.(...) the (=) is Rat's own exact comparison *)
  check_silent "R3" "lib/opt/fixture.ml" "let f a b = Rat.(a = b)\n";
  (* escaping accessors return non-Rat values *)
  check_silent "R3" "lib/opt/fixture.ml" "let f x = Rat.sign x = 0\n";
  (* a local compare definition shadows the polymorphic one *)
  check_silent "R3" "lib/opt/fixture.ml"
    "let compare a b = Int.compare a b\nlet f xs = List.sort compare xs\n";
  check_silent "R3" "lib/opt/fixture.ml" "let f a b = Rat.equal a b\n";
  (* shadowing is scoped to the binding's extent, not a file-global
     watermark: a compare local to [f] does not license [g] below *)
  check_fires "R3" "lib/opt/fixture.ml"
    "let f xs = let compare a b = Int.compare a b in List.sort compare xs\n\
     let g ys = List.sort compare ys\n";
  check_silent "R3" "lib/opt/fixture.ml"
    "let f xs = let compare a b = Int.compare a b in List.sort compare xs\n";
  (* a function parameter named compare shadows inside that function
     only *)
  check_fires "R3" "lib/opt/fixture.ml"
    "let f compare xs = List.sort compare xs\n\
     let g ys = List.sort compare ys\n";
  check_silent "R3" "lib/opt/fixture.ml"
    "let f compare xs = List.sort compare xs\n";
  (* a match case binding compare shadows its own right-hand side only *)
  check_silent "R3" "lib/opt/fixture.ml"
    "let f x xs = match x with Some compare -> List.sort compare xs | None \
     -> []\n"

(* ---- R4: no catch-all exception handlers ---------------------------- *)

let test_r4 () =
  check_fires "R4" "lib/opt/fixture.ml" "let f g = try g () with _ -> 0\n";
  check_silent "R4" "lib/opt/fixture.ml"
    "let f g = try g () with Not_found -> 0\n";
  check_silent "R4" "lib/opt/fixture.ml" "let f g = try g () with e -> raise e\n"

(* ---- R5: domain-parallel primitives confined to the runner ---------- *)

let test_r5 () =
  check_fires "R5" "lib/core/fixture.ml"
    "let d () = Domain.spawn (fun () -> 1)\n";
  check_fires "R5" "lib/opt/fixture.ml" "let a = Atomic.make 0\n";
  check_fires "R5" "bin/fixture.ml" "let m = Mutex.create ()\n";
  check_silent "R5" "lib/experiments/registry.ml"
    "let d () = Domain.spawn (fun () -> 1)\n"

(* ---- R6: no linear list scans in the hot-path engine modules -------- *)

let test_r6 () =
  check_fires "R6" "lib/core/simulator.ml" "let f x xs = List.mem x xs\n";
  check_fires "R6" "lib/core/open_index.ml" "let f k l = List.assoc k l\n";
  (* fit.ml's O(open-bins) policy scan is by design; analysis is cold *)
  (* the per-draw workload sampler is hot too (O(catalog) List.nth
     regression) *)
  check_fires "R6" "lib/workload/generator.ml" "let f n xs = List.nth xs n\n";
  check_silent "R6" "lib/core/fit.ml" "let f x xs = List.mem x xs\n";
  check_silent "R6" "lib/analysis/fixture.ml" "let f x xs = List.mem x xs\n";
  (* spec construction/validation is cold: workload scoping is
     generator.ml only *)
  check_silent "R6" "lib/workload/spec.ml" "let f x xs = List.mem x xs\n";
  check_silent "R6" "lib/core/simulator.ml" "let f x xs = List.map x xs\n";
  (* the Rat.sum extension: a list fold of rationals on the event path *)
  check_fires "R6" "lib/core/packing.ml" "let f xs = Rat.sum xs\n";
  check_fires "R6" "lib/repack/budget.ml" "let f xs = Rat.sum xs\n";
  check_silent "R6" "lib/analysis/fixture.ml" "let f xs = Rat.sum xs\n";
  (* the fault injector's per-event degradation ladder is hot; plan
     construction is cold *)
  check_fires "R6" "lib/faults/injector.ml" "let f xs = Rat.sum xs\n";
  check_fires "R6" "lib/faults/injector.ml" "let f x xs = List.mem x xs\n";
  check_silent "R6" "lib/faults/fault_plan.ml" "let f x xs = List.mem x xs\n"

(* ---- R7: fixed-point arithmetic confined to num + engine ------------ *)

let test_r7 () =
  check_fires "R7" "lib/core/packing.ml" "let f s r = Fixed.of_rat s r\n";
  check_fires "R7" "lib/opt/fixture.ml" "let f s v = Fixed.to_rat s v\n";
  check_fires "R7" "bin/fixture.ml" "let f s v = Dbp_num.Fixed.to_rat s v\n";
  check_fires "R7" "lib/repack/runner.ml" "let f (s : Fixed.scale) = s\n";
  (* the numeric kernel and the two-track engine own the representation *)
  check_silent "R7" "lib/num/fixed.ml" "let f s r = Fixed.of_rat s r\n";
  check_silent "R7" "lib/core/simulator.ml" "let f s r = Fixed.of_rat s r\n";
  (* grid plumbing through the engine API never names Fixed *)
  check_silent "R7" "lib/repack/runner.ml"
    "let f i = Simulator.grid_of_instance i\n"

(* ---- scoping predicates, as the rules see the real tree ------------- *)

let test_scoping () =
  Alcotest.(check bool) "r1 core" true (Rules.r1_applies "lib/core/bin.ml");
  Alcotest.(check bool)
    "r1 display exempt" false
    (Rules.r1_applies "lib/analysis/stats.ml");
  Alcotest.(check bool) "r1 cli" false (Rules.r1_applies "bin/main.ml");
  Alcotest.(check bool)
    "r5 registry" true
    (Rules.r5_allowlisted "lib/experiments/registry.ml");
  Alcotest.(check bool)
    "r5 elsewhere" false
    (Rules.r5_allowlisted "lib/experiments/e1_figure2.ml");
  Alcotest.(check bool) "r6 hot" true (Rules.r6_applies "lib/core/simulator.ml");
  Alcotest.(check bool) "r6 fit" false (Rules.r6_applies "lib/core/fit.ml");
  Alcotest.(check bool)
    "r6 injector" true
    (Rules.r6_applies "lib/faults/injector.ml");
  Alcotest.(check bool)
    "r6 fault plan" false
    (Rules.r6_applies "lib/faults/fault_plan.ml");
  Alcotest.(check bool)
    "r7 num" true
    (Rules.r7_allowlisted "lib/num/fixed.ml");
  Alcotest.(check bool)
    "r7 engine" true
    (Rules.r7_allowlisted "lib/core/simulator.ml");
  Alcotest.(check bool)
    "r7 elsewhere" false
    (Rules.r7_allowlisted "lib/core/packing.ml")

(* ---- one violation of each rule across a fixture tree --------------- *)

let fixture_tree =
  [
    ("lib/core/fx_r1.ml", "let x = 1.5\n");
    ("lib/workload/fx_r2.ml", "let bad r = r = 0.0\n");
    ("lib/opt/fx_r3.ml", "let f a = a = Rat.zero\n");
    ("lib/opt/fx_r4.ml", "let f g = try g () with _ -> 0\n");
    ("lib/faults/fx_r5.ml", "let a = Atomic.make 0\n");
    ("lib/core/simulator.ml", "let f x xs = List.mem x xs\n");
    ("lib/opt/fx_r7.ml", "let f s r = Fixed.of_rat s r\n");
  ]

let test_all_rules_fire () =
  let report = Lint.run_sources fixture_tree in
  let fired =
    report.Lint.findings
    |> List.map (fun f -> f.Finding.rule)
    |> List.sort_uniq String.compare
  in
  Alcotest.(check (list string))
    "every rule fires exactly once over the fixture tree"
    [ "R1"; "R2"; "R3"; "R4"; "R5"; "R6"; "R7" ]
    fired;
  Alcotest.(check int) "seven findings" 7 (List.length report.Lint.findings);
  Alcotest.(check int) "seven files" 7 report.Lint.files_scanned;
  Alcotest.(check int) "strict fails" 1 (Lint.exit_code ~strict:true report)

(* ---- baseline bookkeeping ------------------------------------------- *)

let test_baseline () =
  let path = "lib/workload/fixture.ml" in
  let src = "let bad r = r = 0.0\n" in
  (match (Lint.run_sources [ (path, src) ]).Lint.findings with
  | [ f ] ->
      let base = Finding.fingerprint f in
      Alcotest.(check string)
        "fingerprint shape"
        (Printf.sprintf "R2|%s|m%s" path (Finding.message_hash f))
        base;
      let fp =
        match Lint.fingerprints [ f ] with
        | [ (_, fp) ] -> fp
        | _ -> Alcotest.fail "one indexed fingerprint"
      in
      Alcotest.(check string) "occurrence index" (base ^ "|0") fp;
      let suppressed = Lint.run_sources ~baseline:[ fp ] [ (path, src) ] in
      Alcotest.(check int)
        "suppressed" 0
        (List.length suppressed.Lint.findings);
      Alcotest.(check int) "baselined" 1 suppressed.Lint.baselined;
      Alcotest.(check (list string)) "no stale" [] suppressed.Lint.stale_baseline;
      Alcotest.(check int) "not legacy" 0 suppressed.Lint.legacy_baseline;
      Alcotest.(check int) "exit ok" 0 (Lint.exit_code suppressed);
      Alcotest.(check int)
        "strict exit ok" 0
        (Lint.exit_code ~strict:true suppressed)
  | fs -> Alcotest.failf "expected one R2 finding, got %d" (List.length fs));
  let stale =
    Lint.run_sources ~baseline:[ "R2|gone.ml|1|0" ] [ (path, "let ok = 1\n") ]
  in
  Alcotest.(check (list string))
    "stale entry reported"
    [ "R2|gone.ml|1|0" ]
    stale.Lint.stale_baseline

(* The fingerprint survives edits above the finding (the point of the
   position-independent scheme), and the old positional format still
   suppresses — with the deprecation counter ticking. *)
let test_fingerprint_stability () =
  let path = "lib/workload/fixture.ml" in
  let fp_of src =
    match (Lint.run_sources [ (path, src) ]).Lint.findings with
    | [ f ] -> Finding.fingerprint f
    | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)
  in
  Alcotest.(check string)
    "stable under edits above"
    (fp_of "let bad r = r = 0.0\n")
    (fp_of "(* new comment *)\nlet unrelated = 1\nlet bad r = r = 0.0\n");
  (* same message twice in one file: occurrence indices disambiguate *)
  (match
     Lint.fingerprints
       (Lint.run_sources
          [ (path, "let bad r = r = 0.0\nlet bad2 r = r = 0.0\n") ])
         .Lint.findings
   with
  | [ (_, fp0); (_, fp1) ] ->
      Alcotest.(check bool) "distinct" true (fp0 <> fp1);
      Alcotest.(check string) "first indexed 0" "|0"
        (String.sub fp0 (String.length fp0 - 2) 2);
      Alcotest.(check string) "second indexed 1" "|1"
        (String.sub fp1 (String.length fp1 - 2) 2)
  | fps -> Alcotest.failf "expected two fingerprints, got %d" (List.length fps));
  (* legacy positional entries still match, flagged as deprecated *)
  let legacy =
    Lint.run_sources
      ~baseline:[ "R2|lib/workload/fixture.ml|1|12" ]
      [ (path, "let bad r = r = 0.0\n") ]
  in
  Alcotest.(check int) "legacy suppresses" 0 (List.length legacy.Lint.findings);
  Alcotest.(check int) "legacy counted" 1 legacy.Lint.legacy_baseline;
  Alcotest.(check (list string)) "legacy not stale" [] legacy.Lint.stale_baseline;
  Alcotest.(check bool)
    "legacy format recognised" true
    (Finding.is_legacy_fingerprint "R2|lib/workload/fixture.ml|1|12");
  Alcotest.(check bool)
    "new format not legacy" false
    (Finding.is_legacy_fingerprint "R2|lib/workload/fixture.ml|mdeadbeef|0")

(* ---- exit codes track severity -------------------------------------- *)

let test_exit_codes () =
  let warn =
    Lint.run_sources [ ("lib/opt/fixture.ml", "let f g = try g () with _ -> 0\n") ]
  in
  Alcotest.(check int) "warning passes default" 0 (Lint.exit_code warn);
  Alcotest.(check int) "warning fails strict" 1 (Lint.exit_code ~strict:true warn);
  let err = Lint.run_sources [ ("lib/core/fixture.ml", "let x = 1.5\n") ] in
  Alcotest.(check int) "error fails default" 1 (Lint.exit_code err);
  let clean = Lint.run_sources [ ("lib/core/fixture.ml", "let x = Rat.zero\n") ] in
  Alcotest.(check int) "clean passes strict" 0 (Lint.exit_code ~strict:true clean)

(* ---- unparseable sources become findings, not crashes --------------- *)

let test_parse_failure () =
  match (Lint.run_sources [ ("lib/core/broken.ml", "let = in\n") ]).Lint.findings with
  | [ f ] ->
      Alcotest.(check string) "parse rule" "parse" f.Finding.rule;
      Alcotest.(check string) "path kept" "lib/core/broken.ml" f.Finding.path
  | fs -> Alcotest.failf "expected one parse finding, got %d" (List.length fs)

let suite =
  [
    Alcotest.test_case "R1 no floats in exact core" `Quick test_r1;
    Alcotest.test_case "R2 no float-literal equality" `Quick test_r2;
    Alcotest.test_case "R3 no polymorphic compare on Rat" `Quick test_r3;
    Alcotest.test_case "R4 no catch-all try" `Quick test_r4;
    Alcotest.test_case "R5 domain primitives confined" `Quick test_r5;
    Alcotest.test_case "R6 no list scans in hot path" `Quick test_r6;
    Alcotest.test_case "R7 fixed-point confined" `Quick test_r7;
    Alcotest.test_case "rule scoping predicates" `Quick test_scoping;
    Alcotest.test_case "all rules fire on fixture tree" `Quick test_all_rules_fire;
    Alcotest.test_case "baseline suppresses and reports stale" `Quick test_baseline;
    Alcotest.test_case "fingerprints are position-independent" `Quick
      test_fingerprint_stability;
    Alcotest.test_case "exit codes track severity" `Quick test_exit_codes;
    Alcotest.test_case "parse failures become findings" `Quick test_parse_failure;
  ]
