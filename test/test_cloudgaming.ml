open Dbp_num
open Dbp_core
open Dbp_cloudgaming
open Test_util

let game = Game.make ~title:"test" ~gpu_share:(r 1 4) ()

let test_game_validation () =
  Alcotest.(check bool) "zero share" true
    (try
       ignore (Game.make ~title:"x" ~gpu_share:Rat.zero ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "share > 1" true
    (try
       ignore (Game.make ~title:"x" ~gpu_share:Rat.two ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check int) "default catalog" 8
    (Array.length Game.default_catalog.Game.games)

let test_request () =
  let req = Request.make ~request_id:3 ~game ~start:Rat.one ~stop:(ri 3) in
  check_rat "session length" Rat.two (Request.session_length req);
  let item = Request.to_item req in
  Alcotest.(check int) "item id" 3 item.Item.id;
  check_rat "item size = gpu share" (r 1 4) item.Item.size;
  Alcotest.(check bool) "stop <= start rejected" true
    (try
       ignore (Request.make ~request_id:0 ~game ~start:Rat.one ~stop:Rat.one);
       false
     with Invalid_argument _ -> true)

let test_billing_exact () =
  let m = Billing.exact ~rate:(ri 3) in
  check_rat "charge" (r 9 2) (Billing.charge m ~usage:(r 3 2));
  check_rat "zero usage" Rat.zero (Billing.charge m ~usage:Rat.zero);
  check_rat "total" (ri 9) (Billing.total m ~usages:[ Rat.one; Rat.two ])

let test_billing_hourly () =
  let m = Billing.hourly ~rate_per_hour:(ri 2) in
  check_rat "rounds up" (ri 4) (Billing.charge m ~usage:(r 3 2));
  check_rat "exact hour" (ri 2) (Billing.charge m ~usage:Rat.one);
  check_rat "zero is free" Rat.zero (Billing.charge m ~usage:Rat.zero);
  Alcotest.(check bool) "hourly >= exact always" true
    (List.for_all
       (fun u ->
         Rat.(
           Billing.charge m ~usage:u
           >= Billing.charge (Billing.exact ~rate:(ri 2)) ~usage:u))
       [ r 1 10; Rat.one; r 7 3; ri 5 ])

let test_workload_generation () =
  let profile =
    { Gaming_workload.default_profile with
      Gaming_workload.duration_hours = 6.0;
      base_rate = 20.0 }
  in
  let requests = Gaming_workload.generate ~seed:1L profile in
  Alcotest.(check bool) "nonempty" true (List.length requests > 20);
  List.iter
    (fun (req : Request.t) ->
      let len = Rat.to_float (Request.session_length req) in
      if len < 0.24 || len > 8.01 then
        Alcotest.failf "session length out of clamps: %f" len)
    requests;
  (* deterministic *)
  let again = Gaming_workload.generate ~seed:1L profile in
  Alcotest.(check int) "deterministic count" (List.length requests)
    (List.length again);
  Alcotest.(check bool) "mu within clamp ratio" true
    Rat.(Gaming_workload.mu_of requests <= Rat.of_float (8.0 /. 0.25))

let test_dispatch_consistency () =
  let profile =
    { Gaming_workload.default_profile with
      Gaming_workload.duration_hours = 4.0;
      base_rate = 15.0 }
  in
  let requests = Gaming_workload.generate ~seed:2L profile in
  let report = Dispatcher.dispatch ~policy:First_fit.policy requests in
  assert_valid_packing report.Dispatcher.packing;
  Alcotest.(check int) "request count" (List.length requests)
    report.Dispatcher.requests;
  check_rat "exact billing = server hours"
    report.Dispatcher.server_hours report.Dispatcher.dollar_cost;
  Alcotest.(check bool) "cost >= offline lower bound" true
    Rat.(report.Dispatcher.server_hours >= report.Dispatcher.offline_lower_bound);
  Alcotest.(check bool) "utilisation in (0,1]" true
    Rat.(report.Dispatcher.mean_utilisation > Rat.zero)
    ;
  Alcotest.(check bool) "utilisation <= 1" true
    Rat.(report.Dispatcher.mean_utilisation <= Rat.one);
  Alcotest.(check bool) "peak <= used" true
    (report.Dispatcher.peak_servers <= report.Dispatcher.servers_used)

let test_dispatch_faulty () =
  let profile =
    { Gaming_workload.default_profile with
      Gaming_workload.duration_hours = 4.0;
      base_rate = 15.0 }
  in
  let requests = Gaming_workload.generate ~seed:4L profile in
  let plan =
    Dbp_faults.Fault_plan.targeted_fullest ~times:[ Rat.one; Rat.two ]
  in
  let fr =
    Dispatcher.dispatch_faulty ~plan ~policy:First_fit.policy requests
  in
  assert_valid_packing fr.Dispatcher.base.Dispatcher.packing;
  let res = fr.Dispatcher.resilience in
  Alcotest.(check int) "both faults landed" 2
    res.Dbp_faults.Resilience.faults_injected;
  Alcotest.(check bool) "sessions were interrupted" true
    (res.Dbp_faults.Resilience.interrupted_sessions > 0);
  Alcotest.(check bool) "availability at most 1" true
    Rat.(Dbp_faults.Resilience.availability res <= Rat.one);
  (* the base report reads its metrics off the effective hosting *)
  check_rat "dollar cost = faulty server hours"
    fr.Dispatcher.base.Dispatcher.server_hours
    res.Dbp_faults.Resilience.faulty_cost;
  (* empty plan: the faulty report degenerates to the plain one *)
  let plain = Dispatcher.dispatch ~policy:First_fit.policy requests in
  let nofault =
    Dispatcher.dispatch_faulty ~plan:Dbp_faults.Fault_plan.empty
      ~policy:First_fit.policy requests
  in
  check_rat "empty plan, same cost" plain.Dispatcher.dollar_cost
    nofault.Dispatcher.base.Dispatcher.dollar_cost;
  Alcotest.(check int) "empty plan, same fleet" plain.Dispatcher.servers_used
    nofault.Dispatcher.base.Dispatcher.servers_used;
  (* the comparison wrapper covers every policy on the same plan *)
  let frs =
    Dispatcher.compare_policies_faulty ~plan
      ~policies:[ First_fit.policy; Worst_fit.policy ]
      requests
  in
  Alcotest.(check int) "two faulty reports" 2 (List.length frs);
  (* renders without raising *)
  ignore (Format.asprintf "%a" Dispatcher.pp_fault_report fr)

let test_compare_policies () =
  let profile =
    { Gaming_workload.default_profile with
      Gaming_workload.duration_hours = 3.0;
      base_rate = 15.0 }
  in
  let requests = Gaming_workload.generate ~seed:3L profile in
  let reports =
    Dispatcher.compare_policies
      ~policies:[ First_fit.policy; Best_fit.policy; Next_fit.policy ]
      requests
  in
  Alcotest.(check int) "three reports" 3 (List.length reports);
  (* same offline bound on the same trace *)
  match reports with
  | [ a; b; c ] ->
      check_rat "same lower bound ab" a.Dispatcher.offline_lower_bound
        b.Dispatcher.offline_lower_bound;
      check_rat "same lower bound ac" a.Dispatcher.offline_lower_bound
        c.Dispatcher.offline_lower_bound
  | _ -> Alcotest.fail "shape"

let test_hourly_billing_dominates () =
  let profile =
    { Gaming_workload.default_profile with
      Gaming_workload.duration_hours = 3.0;
      base_rate = 10.0 }
  in
  let requests = Gaming_workload.generate ~seed:4L profile in
  let exact =
    Dispatcher.dispatch ~billing:(Billing.exact ~rate:Rat.one)
      ~policy:First_fit.policy requests
  in
  let hourly =
    Dispatcher.dispatch ~billing:(Billing.hourly ~rate_per_hour:Rat.one)
      ~policy:First_fit.policy requests
  in
  Alcotest.(check bool) "hourly costs at least exact" true
    Rat.(hourly.Dispatcher.dollar_cost >= exact.Dispatcher.dollar_cost)

let test_resource_profiles () =
  (* Every catalog title's profile fits one server in every dimension,
     and the first component is the scalar-era gpu share. *)
  Array.iter
    (fun g ->
      let v = Game.resources g in
      Alcotest.(check int) "dims" Game.resource_dims (Vec.dim v);
      Alcotest.(check bool) "within capacity" true
        (Vec.le v (Vec.ones ~dims:Game.resource_dims));
      Alcotest.(check bool) "positive shares" true
        (List.for_all (fun s -> Rat.(s > Rat.zero)) (Vec.to_list v));
      check_rat "dim 0 is the gpu share" g.Game.gpu_share (Vec.get v 0))
    Game.default_catalog.Game.games;
  (* ~dims truncates, and dims = 1 is exactly the scalar model. *)
  let v2 = Game.resources ~dims:2 game in
  Alcotest.(check int) "truncated dims" 2 (Vec.dim v2);
  check_rat "gpu survives truncation" (r 1 4) (Vec.get v2 0);
  Alcotest.(check bool) "d=1 is the scalar size" true
    (Vec.equal (Game.resources ~dims:1 game) (Vec.scalar (r 1 4)));
  (* Defaulted secondary shares scale with the gpu share. *)
  let heavy = Game.make ~title:"heavy" ~gpu_share:(r 1 2) () in
  let light = Game.make ~title:"light" ~gpu_share:(r 1 8) () in
  Alcotest.(check bool) "defaults ordered by gpu share" true
    (Vec.le (Game.resources light) (Game.resources heavy))

let test_gaming_vec_conversion () =
  let profile =
    { Gaming_workload.default_profile with
      Gaming_workload.duration_hours = 3.0;
      base_rate = 15.0 }
  in
  let requests = Gaming_workload.generate ~seed:11L profile in
  let same_instance a b =
    let ia = Vec_instance.items a and ib = Vec_instance.items b in
    Vec.equal (Vec_instance.capacity a) (Vec_instance.capacity b)
    && Array.length ia = Array.length ib
    && Array.for_all2
         (fun x y ->
           x.Vec_instance.id = y.Vec_instance.id
           && Vec.equal x.Vec_instance.size y.Vec_instance.size
           && Rat.equal x.Vec_instance.arrival y.Vec_instance.arrival
           && Rat.equal x.Vec_instance.departure y.Vec_instance.departure)
         ia ib
  in
  (* The d = 1 conversion is the scalar instance, embedded. *)
  let scalar = Gaming_workload.to_instance requests in
  let v1 = Gaming_workload.to_vec_instance ~dims:1 requests in
  Alcotest.(check bool) "d=1 = of_scalar" true
    (same_instance v1 (Vec_instance.of_scalar scalar));
  (* The full conversion keeps ids/intervals and widens only the size. *)
  let v4 = Gaming_workload.to_vec_instance requests in
  Alcotest.(check int) "item count" (List.length requests)
    (Array.length (Vec_instance.items v4));
  List.iter2
    (fun req it ->
      Alcotest.(check int) "id" req.Request.request_id
        it.Vec_instance.id;
      Alcotest.(check bool) "size is the game profile" true
        (Vec.equal it.Vec_instance.size (Game.resources req.Request.game)))
    requests
    (Array.to_list (Vec_instance.items v4))

let test_flat_profile () =
  let profile =
    { Gaming_workload.default_profile with
      Gaming_workload.diurnal_amplitude = 0.0;
      duration_hours = 2.0 }
  in
  Alcotest.(check bool) "flat profile generates" true
    (List.length (Gaming_workload.generate ~seed:5L profile) > 0)

let suite =
  [
    Alcotest.test_case "game validation" `Quick test_game_validation;
    Alcotest.test_case "request" `Quick test_request;
    Alcotest.test_case "billing exact" `Quick test_billing_exact;
    Alcotest.test_case "billing hourly" `Quick test_billing_hourly;
    Alcotest.test_case "workload generation" `Quick test_workload_generation;
    Alcotest.test_case "dispatch consistency" `Quick test_dispatch_consistency;
    Alcotest.test_case "compare policies" `Quick test_compare_policies;
    Alcotest.test_case "faulty dispatch" `Quick test_dispatch_faulty;
    Alcotest.test_case "hourly billing dominates" `Quick
      test_hourly_billing_dominates;
    Alcotest.test_case "flat profile" `Quick test_flat_profile;
    Alcotest.test_case "resource profiles" `Quick test_resource_profiles;
    Alcotest.test_case "gaming vec conversion" `Quick
      test_gaming_vec_conversion;
  ]

(* ---- additional billing/workload edges ------------------------------- *)

let test_billing_block_sizes () =
  let m = Billing.Per_block { rate = r 3 2; block = r 1 2 } in
  (* usage 0.7 -> 2 blocks of 1/2 -> pay 3/2 * 2 * 1/2 = 3/2 *)
  check_rat "sub-hour blocks" (r 3 2) (Billing.charge m ~usage:(r 7 10));
  check_rat "exact block boundary" (r 3 4) (Billing.charge m ~usage:(r 1 2));
  Alcotest.(check bool) "negative usage rejected" true
    (try
       ignore (Billing.charge m ~usage:(Rat.neg Rat.one));
       false
     with Invalid_argument _ -> true)

let test_zipf_popularity_shows () =
  (* with enough requests, the most popular title must dominate the
     rarest *)
  let profile =
    { Gaming_workload.default_profile with
      Gaming_workload.duration_hours = 20.0;
      base_rate = 50.0 }
  in
  let requests = Gaming_workload.generate ~seed:21L profile in
  let count title =
    List.length
      (List.filter (fun (r : Request.t) -> r.game.Game.title = title) requests)
  in
  Alcotest.(check bool) "puzzle-2d >> aaa-rpg" true
    (count "puzzle-2d" > 3 * count "aaa-rpg")

let test_diurnal_modulation () =
  (* amplitude 0.9: arrivals cluster near the 12h peak (rate_at is
     lowest at t=0 and highest at t=12 for a 24h cycle) *)
  let profile =
    { Gaming_workload.default_profile with
      Gaming_workload.duration_hours = 24.0;
      base_rate = 40.0;
      diurnal_amplitude = 0.9 }
  in
  let requests = Gaming_workload.generate ~seed:22L profile in
  let in_window lo hi =
    List.length
      (List.filter
         (fun (r : Request.t) ->
           let t = Rat.to_float r.start in
           t >= lo && t < hi)
         requests)
  in
  Alcotest.(check bool) "peak hours busier than trough" true
    (in_window 10.0 14.0 > 2 * in_window 0.0 4.0)

let dispatch_props =
  [
    Test_util.qcheck ~count:50 "dispatch reports are internally consistent"
      QCheck2.Gen.(map Int64.of_int (int_range 1 1000))
      (fun seed ->
        let profile =
          { Gaming_workload.default_profile with
            Gaming_workload.duration_hours = 3.0;
            base_rate = 15.0 }
        in
        match Gaming_workload.generate ~seed profile with
        | [] -> true
        | requests ->
            let report = Dispatcher.dispatch ~policy:Best_fit.policy requests in
            let hours_from_bins =
              Array.to_list report.Dispatcher.packing.Packing.bins
              |> List.map (fun b -> Interval.length (Packing.usage_period b))
              |> Rat.sum
            in
            Rat.equal report.Dispatcher.server_hours hours_from_bins
            && report.Dispatcher.peak_servers
               = report.Dispatcher.packing.Packing.max_bins
            && Rat.(report.Dispatcher.mean_utilisation <= Rat.one)
            && Rat.(
                 report.Dispatcher.server_hours
                 >= report.Dispatcher.offline_lower_bound));
  ]

let suite =
  suite
  @ [
      Alcotest.test_case "billing block sizes" `Quick test_billing_block_sizes;
      Alcotest.test_case "zipf popularity" `Quick test_zipf_popularity_shows;
      Alcotest.test_case "diurnal modulation" `Quick test_diurnal_modulation;
    ]
  @ dispatch_props
