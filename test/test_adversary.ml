open Dbp_num
open Dbp_core
open Dbp_adversary
open Test_util

(* ---- Theorem 1 construction -------------------------------------- *)

let test_anyfit_matches_closed_form () =
  List.iter
    (fun policy ->
      List.iter
        (fun (k, mu_i) ->
          let mu = ri mu_i in
          let result = Anyfit_lb.run ~policy ~k ~mu () in
          assert_valid_packing result.Anyfit_lb.packing;
          check_rat
            (Printf.sprintf "%s k=%d mu=%d" policy.Policy.name k mu_i)
            (Anyfit_lb.closed_form_ratio ~k ~mu)
            result.Anyfit_lb.ratio_lower)
        [ (1, 3); (2, 2); (4, 5); (6, 3); (10, 10) ])
    (Algorithms.any_fit_family ())

let test_anyfit_opt_is_truly_opt () =
  (* The analytic OPT upper bound is the exact OPT_total. *)
  let result = Anyfit_lb.run ~k:4 ~mu:(ri 6) () in
  let opt = Dbp_opt.Opt_total.compute result.Anyfit_lb.instance in
  Alcotest.(check bool) "exact" true opt.Dbp_opt.Opt_total.exact;
  check_rat "analytic = computed OPT" result.Anyfit_lb.opt_upper
    (Dbp_opt.Opt_total.value_exn opt)

let test_anyfit_ratio_approaches_mu () =
  let mu = ri 8 in
  let at k = Rat.to_float (Anyfit_lb.run ~k ~mu ()).Anyfit_lb.ratio_lower in
  Alcotest.(check bool) "monotone in k" true (at 16 > at 4);
  Alcotest.(check bool) "close to mu at k=64" true (at 64 > 7.0);
  Alcotest.(check bool) "never exceeds mu" true (at 64 <= 8.0)

let test_anyfit_instance_properties () =
  let mu = ri 5 and k = 5 in
  let result = Anyfit_lb.run ~k ~mu () in
  let instance = result.Anyfit_lb.instance in
  Alcotest.(check int) "k^2 items" (k * k) (Instance.size instance);
  check_rat "realised mu" mu (Instance.mu instance);
  check_rat "all sizes 1/k" (Rat.make 1 k) (Instance.max_size instance);
  Alcotest.(check int) "k bins" k (Packing.bins_used result.Anyfit_lb.packing)

let test_anyfit_validation () =
  Alcotest.(check bool) "k < 1 rejected" true
    (try
       ignore (Anyfit_lb.run ~k:0 ~mu:Rat.two ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "mu < 1 rejected" true
    (try
       ignore (Anyfit_lb.run ~k:2 ~mu:(r 1 2) ());
       false
     with Invalid_argument _ -> true)

let test_anyfit_mu_one_degenerates () =
  let result = Anyfit_lb.run ~k:5 ~mu:Rat.one () in
  check_rat "ratio 1 at mu=1" Rat.one result.Anyfit_lb.ratio_lower

(* ---- Theorem 2 construction -------------------------------------- *)

let test_bestfit_small () =
  let result = Bestfit_unbounded.run ~k:3 ~mu:Rat.two ~iterations:2 () in
  assert_valid_packing result.Bestfit_unbounded.packing;
  Alcotest.(check int) "k bins total" 3
    (Packing.bins_used result.Bestfit_unbounded.packing);
  check_rat "realised mu is exactly mu" Rat.two
    result.Bestfit_unbounded.mu_realised;
  (* BF pays k * (n mu + 1) = 3 * 5 = 15. *)
  check_rat "BF cost" (ri 15) result.Bestfit_unbounded.algorithm_cost;
  Alcotest.(check bool) "ratio > 1" true
    Rat.(result.Bestfit_unbounded.ratio_lower > Rat.one)

let test_bestfit_opt_upper_is_sound () =
  (* The analytic offline cost must dominate the true OPT_total. *)
  let result = Bestfit_unbounded.run ~k:3 ~mu:Rat.two ~iterations:2 () in
  let opt = Dbp_opt.Opt_total.compute result.Bestfit_unbounded.instance in
  Alcotest.(check bool) "opt upper sound" true
    Rat.(result.Bestfit_unbounded.opt_upper >= opt.Dbp_opt.Opt_total.lower)

let test_bestfit_beats_k_over_2 () =
  let k = 6 and mu = Rat.two in
  let n = Bestfit_unbounded.paper_iterations ~k ~mu in
  let result = Bestfit_unbounded.run ~k ~mu ~iterations:(n + 2) () in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.2f >= k/2 = %.1f"
       (Rat.to_float result.Bestfit_unbounded.ratio_lower)
       (float_of_int k /. 2.0))
    true
    Rat.(result.Bestfit_unbounded.ratio_lower >= Rat.make k 2)

let test_bestfit_ratio_grows_with_k () =
  let mu = Rat.two in
  let ratio k =
    let n = Bestfit_unbounded.paper_iterations ~k ~mu + 1 in
    Rat.to_float
      (Bestfit_unbounded.run ~k ~mu ~iterations:n ()).Bestfit_unbounded
        .ratio_lower
  in
  let r4 = ratio 4 and r8 = ratio 8 in
  Alcotest.(check bool) "unbounded growth" true (r8 > r4 && r8 > 3.5)

let test_bestfit_interval_lengths_legal () =
  let mu = r 5 2 in
  let result = Bestfit_unbounded.run ~k:4 ~mu ~iterations:3 () in
  let instance = result.Bestfit_unbounded.instance in
  check_rat "min length 1" Rat.one (Instance.min_interval_length instance);
  check_rat "max length mu" mu (Instance.max_interval_length instance)

let test_bestfit_first_fit_escapes () =
  (* Running the Theorem 2 adversary script against First Fit must fail
     the forced-placement check: the trap is Best Fit-specific. *)
  Alcotest.(check bool) "FF deviates" true
    (try
       ignore
         (Bestfit_unbounded.run ~policy:First_fit.policy ~k:3 ~mu:Rat.two
            ~iterations:2 ());
       false
     with Failure _ -> true)

let test_bestfit_validation () =
  Alcotest.(check bool) "k < 2" true
    (try
       ignore (Bestfit_unbounded.run ~k:1 ~mu:Rat.two ~iterations:1 ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "mu <= 1" true
    (try
       ignore (Bestfit_unbounded.run ~k:3 ~mu:Rat.one ~iterations:1 ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "delta too large" true
    (try
       ignore
         (Bestfit_unbounded.run ~delta:(ri 5) ~k:3 ~mu:Rat.two ~iterations:1 ());
       false
     with Invalid_argument _ -> true)

(* ---- Recorder ------------------------------------------------------ *)

let test_recorder_basics () =
  let adv = Recorder.create ~policy:First_fit.policy ~capacity:Rat.one in
  let a = Recorder.arrive adv ~now:Rat.zero ~size:(r 1 2) in
  let b = Recorder.arrive adv ~now:Rat.zero ~size:(r 2 3) in
  Alcotest.(check int) "sequential ids" 1 b;
  Alcotest.(check int) "a in bin 0" 0 (Recorder.bin_of adv a);
  Alcotest.(check int) "b in bin 1" 1 (Recorder.bin_of adv b);
  Alcotest.(check (list int)) "bin 0 contents" [ a ]
    (Recorder.active_ids_in_bin adv 0);
  Recorder.depart adv ~now:Rat.one a;
  Alcotest.(check bool) "double departure rejected" true
    (try
       Recorder.depart adv ~now:Rat.one a;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "finish with active rejected" true
    (try
       ignore (Recorder.finish adv);
       false
     with Invalid_argument _ -> true);
  Recorder.depart_all_active adv ~now:Rat.two;
  let instance, packing = Recorder.finish adv in
  Alcotest.(check int) "two items" 2 (Instance.size instance);
  assert_valid_packing packing;
  check_rat "cost" (ri 3) packing.Packing.total_cost

let suite =
  [
    Alcotest.test_case "T1: ratio matches eq (1) for all any-fit" `Quick
      test_anyfit_matches_closed_form;
    Alcotest.test_case "T1: analytic OPT = computed OPT" `Quick
      test_anyfit_opt_is_truly_opt;
    Alcotest.test_case "T1: ratio -> mu as k grows" `Quick
      test_anyfit_ratio_approaches_mu;
    Alcotest.test_case "T1: instance shape" `Quick test_anyfit_instance_properties;
    Alcotest.test_case "T1: validation" `Quick test_anyfit_validation;
    Alcotest.test_case "T1: mu=1 degenerates to ratio 1" `Quick
      test_anyfit_mu_one_degenerates;
    Alcotest.test_case "T2: small construction" `Quick test_bestfit_small;
    Alcotest.test_case "T2: analytic OPT sound" `Quick
      test_bestfit_opt_upper_is_sound;
    Alcotest.test_case "T2: ratio >= k/2 at paper iterations" `Quick
      test_bestfit_beats_k_over_2;
    Alcotest.test_case "T2: ratio grows with k" `Quick
      test_bestfit_ratio_grows_with_k;
    Alcotest.test_case "T2: interval lengths within [1, mu]" `Quick
      test_bestfit_interval_lengths_legal;
    Alcotest.test_case "T2: First Fit escapes the trap" `Quick
      test_bestfit_first_fit_escapes;
    Alcotest.test_case "T2: validation" `Quick test_bestfit_validation;
    Alcotest.test_case "recorder protocol" `Quick test_recorder_basics;
  ]
