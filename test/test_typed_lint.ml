(* Fixture tests for the typed lint tier (T1..T4): every rule gets a
   must-flag / must-not-flag pair, typechecked in memory against the
   stdlib environment through [Typed_lint.run_typed_sources].  Fixtures
   carry their own stub modules (a local [Rat]/[Fixed]) — the typed
   rules key on the last module component of each resolved path, so a
   stub [Rat.t] and the real [Dbp_num__Rat.t] are the same key.  Paths
   mirror the repo layout, exactly as in the syntactic tier's tests.

   Two regressions pin the tier's reason to exist: T1 sees a Rat
   buried in a tuple type where the syntactic R3 (which needs a [Rat]
   token in the expression) is blind, and T2 follows a
   [type t = Fixed.t] alias to use sites where R7 (which needs a
   [Fixed] token) is blind. *)

open Dbp_lint

let typed_findings path source =
  (Typed_lint.run_typed_sources [ (path, source) ]).Lint.findings

let rules_fired path source =
  typed_findings path source
  |> List.map (fun f -> f.Finding.rule)
  |> List.sort_uniq String.compare

let no_typecheck_errors name fired =
  Alcotest.(check bool)
    (Printf.sprintf "%s: fixture typechecks" name)
    false
    (List.mem "typecheck" fired)

let check_fires rule path source =
  let fired = rules_fired path source in
  no_typecheck_errors rule fired;
  Alcotest.(check bool)
    (Printf.sprintf "%s fires at %s" rule path)
    true (List.mem rule fired)

let check_silent rule path source =
  let fired = rules_fired path source in
  no_typecheck_errors rule fired;
  Alcotest.(check bool)
    (Printf.sprintf "%s silent at %s" rule path)
    false (List.mem rule fired)

let rat_stub =
  "module Rat = struct\n\
  \  type t = { num : int; den : int }\n\
  \  let zero = { num = 0; den = 1 }\n\
  \  let equal a b = a.num * b.den = b.num * a.den\n\
  \  let add a b = { num = (a.num * b.den) + (b.num * a.den); den = a.den * \
   b.den }\n\
   end\n"

let fixed_stub = "module Fixed = struct type t = int type scale = int end\n"

(* ---- T1: polymorphic compare at a type containing Rat.t ------------- *)

let test_t1 () =
  check_fires "T1" "lib/opt/fixture.ml"
    (rat_stub ^ "let f (a : Rat.t) b = a = b\n");
  check_fires "T1" "lib/opt/fixture.ml"
    (rat_stub ^ "let f (xs : Rat.t list) ys = compare xs ys\n");
  check_fires "T1" "lib/opt/fixture.ml"
    (rat_stub ^ "let f (x : Rat.t option) = Hashtbl.hash x\n");
  check_fires "T1" "lib/opt/fixture.ml"
    (rat_stub ^ "let f (xs : (int * Rat.t) list) = List.sort compare xs\n");
  (* typed comparisons and non-Rat instantiations are fine *)
  check_silent "T1" "lib/opt/fixture.ml"
    (rat_stub ^ "let f (a : Rat.t) b = Rat.equal a b\n");
  check_silent "T1" "lib/opt/fixture.ml"
    (rat_stub ^ "let f (a : int) b = a = b\n");
  (* comparison against a constant constructor never recurses into the
     rationals inside: the [xs = []] / [o <> None] idiom stays legal *)
  check_silent "T1" "lib/opt/fixture.ml"
    (rat_stub ^ "let is_empty (xs : Rat.t list) = xs = []\n");
  check_silent "T1" "lib/opt/fixture.ml"
    (rat_stub ^ "let f (o : Rat.t option) = o <> None\n");
  (* ... but a partial application of (=) at a Rat type gets no out *)
  check_fires "T1" "lib/opt/fixture.ml"
    (rat_stub ^ "let f (xs : Rat.t list) = List.exists (( = ) Rat.zero) xs\n");
  (* a locally shadowed compare resolves to a non-Stdlib path *)
  check_silent "T1" "lib/opt/fixture.ml"
    (rat_stub
   ^ "let f (xs : Rat.t list) =\n\
     \  let compare (a : Rat.t) (b : Rat.t) =\n\
     \    Stdlib.compare (a.Rat.num * b.Rat.den) (b.Rat.num * a.Rat.den)\n\
     \  in\n\
     \  List.sort compare xs\n")

(* The DVBP vectors: [Vec.t] is a [Rat.t array] under the hood, so a
   polymorphic comparison on whole vectors (or on the vector-engine
   views that embed them) is exactly the array-buried-Rat case the
   typed tier exists to catch. *)
let test_t1_vec () =
  let vec_stub = rat_stub ^ "module Vec = struct type t = Rat.t array end\n" in
  check_fires "T1" "lib/opt/fixture.ml"
    (vec_stub ^ "let f (a : Vec.t) b = a = b\n");
  check_fires "T1" "lib/opt/fixture.ml"
    (vec_stub
   ^ "type view = { id : int; level : Vec.t }\n"
   ^ "let same (a : view) (b : view) = compare a b\n");
  (* component-wise exact comparison is the sanctioned spelling *)
  check_silent "T1" "lib/opt/fixture.ml"
    (vec_stub
   ^ "let f (a : Vec.t) (b : Vec.t) =\n\
     \  Array.length a = Array.length b\n\
     \  && Array.for_all2 Rat.equal a b\n")

(* The tier-defining regression: a Rat two levels deep in the inferred
   type, with no [Rat] token anywhere near the comparison — the
   syntactic R3 is blind, T1 is not. *)
let test_t1_catches_what_r3_misses () =
  let path = "lib/opt/fixture.ml" in
  let source =
    rat_stub ^ "type labelled = int * Rat.t\n"
    ^ "let same (a : labelled) (b : labelled) = a = b\n"
  in
  let syntactic =
    (Lint.run_sources [ (path, source) ]).Lint.findings
    |> List.map (fun f -> f.Finding.rule)
  in
  Alcotest.(check bool)
    "R3 misses the tuple-buried Rat" false
    (List.mem "R3" syntactic);
  check_fires "T1" path source

(* ---- T2: Fixed.t escaping the numeric kernel ------------------------- *)

let test_t2 () =
  check_fires "T2" "lib/repack/fixture.ml"
    (fixed_stub ^ "let f (x : Fixed.t) = x\n");
  check_fires "T2" "lib/opt/fixture.ml"
    (fixed_stub ^ "type slot = { raw : Fixed.t }\n");
  (* the allowlist: the numeric kernel and the two-track engine *)
  check_silent "T2" "lib/num/fixture.ml"
    (fixed_stub ^ "let f (x : Fixed.t) = x\n");
  check_silent "T2" "lib/core/simulator.ml"
    (fixed_stub ^ "let f (x : Fixed.t) = x\n");
  (* Fixed.scale is the sanctioned opaque grid handle *)
  check_silent "T2" "lib/repack/fixture.ml"
    (fixed_stub ^ "let f (s : Fixed.scale) = s\n")

(* The second tier-defining regression: [type t = Fixed.t] aliases.
   R7 token-matches the alias declaration itself, but a use site of
   the alias never says [Fixed] — only the typed taint follows it. *)
let test_t2_catches_alias_escape () =
  let path = "lib/repack/fixture.ml" in
  let source =
    fixed_stub ^ "module Alias = struct type t = Fixed.t end\n"
    ^ "let through (x : Alias.t) = x\n"
  in
  let line3_rules rules_of =
    rules_of
    |> List.filter (fun f -> f.Finding.line = 3)
    |> List.map (fun f -> f.Finding.rule)
    |> List.sort_uniq String.compare
  in
  (* the syntactic tier flags line 2 (it sees the [Fixed] token in the
     alias declaration) but is blind to the use on line 3 *)
  let syntactic = (Lint.run_sources [ (path, source) ]).Lint.findings in
  Alcotest.(check (list string))
    "R7 blind at the alias use site" []
    (line3_rules syntactic);
  (* the typed tier follows the taint through the alias to line 3 *)
  let typed = typed_findings path source in
  Alcotest.(check (list string))
    "T2 flags the alias use site" [ "T2" ]
    (line3_rules typed)

(* ---- T3: mutable capture by spawned closures ------------------------- *)

let test_t3 () =
  check_fires "T3" "lib/core/fixture.ml"
    "let bad () =\n\
    \  let counter = ref 0 in\n\
    \  Domain.spawn (fun () -> incr counter)\n";
  check_fires "T3" "lib/opt/fixture.ml"
    "let bad (tbl : (int, int) Hashtbl.t) =\n\
    \  Domain.spawn (fun () -> Hashtbl.length tbl)\n";
  (* a mutable record field taints the whole type *)
  check_fires "T3" "lib/core/fixture.ml"
    "type cell = { mutable v : int }\n\
     let bad (c : cell) = Domain.spawn (fun () -> c.v)\n";
  (* immutable captures are fine *)
  check_silent "T3" "lib/core/fixture.ml"
    "let ok (n : int) = Domain.spawn (fun () -> n + 1)\n";
  (* idents bound inside the spawned closure are not captures *)
  check_silent "T3" "lib/core/fixture.ml"
    "let ok () = Domain.spawn (fun () -> let r = ref 0 in incr r; !r)\n";
  (* the approved parallel runner is exempt *)
  check_silent "T3" "lib/experiments/registry.ml"
    "let ok () =\n\
    \  let counter = ref 0 in\n\
    \  Domain.spawn (fun () -> incr counter)\n"

(* ---- T4: allocation census of the commit/view core ------------------- *)

let spammy_body =
  "  let a = (x, x) in\n\
  \  let b = (x, x + 1) in\n\
  \  let c = (x, x + 2) in\n\
  \  let d = (x, x + 3) in\n\
  \  [ a; b; c; d ]\n"

let test_t4 () =
  (* four tuples beat the boxed threshold in a hot function *)
  check_fires "T4" "lib/core/simulator.ml"
    ("let commit_fast x =\n" ^ spammy_body);
  (* same body, cold name: not on the per-event path *)
  check_silent "T4" "lib/core/simulator.ml"
    ("let report_summary x =\n" ^ spammy_body);
  (* same body, hot name, outside the engine: T4 is simulator-scoped *)
  check_silent "T4" "lib/opt/fixture.ml"
    ("let commit_fast x =\n" ^ spammy_body);
  (* a lean hot function passes *)
  check_silent "T4" "lib/core/simulator.ml"
    "let refresh_slot x = x + 1\n";
  (* rational temporaries count against their own threshold *)
  check_fires "T4" "lib/core/simulator.ml"
    (rat_stub
   ^ "let commit_fast (a : Rat.t) b =\n\
     \  let x1 = Rat.add a b in\n\
     \  let x2 = Rat.add x1 b in\n\
     \  let x3 = Rat.add x2 b in\n\
     \  let x4 = Rat.add x3 b in\n\
     \  let x5 = Rat.add x4 b in\n\
     \  x5\n");
  check_silent "T4" "lib/core/simulator.ml"
    (rat_stub
   ^ "let commit_fast (a : Rat.t) b =\n\
     \  let x1 = Rat.add a b in\n\
     \  let x2 = Rat.add x1 b in\n\
     \  x2\n");
  (* allocations on a panic branch do not count against the budget... *)
  check_silent "T4" "lib/core/simulator.ml"
    "let mark_dirty x =\n\
    \  if x < 0 then\n\
    \    invalid_arg (String.concat \",\" [ \"a\"; \"b\"; \"c\"; \"d\"; \
     \"e\" ])\n\
    \  else x\n";
  (* ... but the same list on a live path does *)
  check_fires "T4" "lib/core/simulator.ml"
    "let mark_dirty x =\n\
    \  ignore (String.concat \",\" [ \"a\"; \"b\"; \"c\"; \"d\"; \"e\" ]);\n\
    \  x\n"

(* ---- plumbing: shared findings, fingerprints, typecheck errors ------- *)

let test_plumbing () =
  (* a fixture that does not typecheck becomes a finding, not a crash *)
  (match typed_findings "lib/opt/broken.ml" "let f (x : int) = x +. 1.0\n" with
  | [ f ] ->
      Alcotest.(check string) "typecheck rule" "typecheck" f.Finding.rule;
      Alcotest.(check string) "path kept" "lib/opt/broken.ml" f.Finding.path
  | fs -> Alcotest.failf "expected one typecheck finding, got %d" (List.length fs));
  (* dune's wrapped-library mangling strips to the bare module name *)
  Alcotest.(check string) "norm_unit" "Rat" (Typed_rules.norm_unit "Dbp_num__Rat");
  Alcotest.(check string)
    "norm_unit idempotent" "Simulator"
    (Typed_rules.norm_unit "Simulator");
  (* typed findings ride the same baseline plumbing as the syntactic
     tier: position-independent fingerprints, suppression, staleness *)
  let path = "lib/opt/fixture.ml" in
  let source = rat_stub ^ "let f (a : Rat.t) b = a = b\n" in
  (match (Typed_lint.run_typed_sources [ (path, source) ]).Lint.findings with
  | [ f ] ->
      Alcotest.(check string) "typed rule" "T1" f.Finding.rule;
      let fp =
        match Lint.fingerprints [ f ] with
        | [ (_, fp) ] -> fp
        | _ -> Alcotest.fail "one indexed fingerprint"
      in
      let suppressed =
        Typed_lint.run_typed_sources ~baseline:[ fp ] [ (path, source) ]
      in
      Alcotest.(check int)
        "typed finding baselined" 0
        (List.length suppressed.Lint.findings);
      Alcotest.(check int) "baselined count" 1 suppressed.Lint.baselined
  | fs -> Alcotest.failf "expected one T1 finding, got %d" (List.length fs));
  (* every typed rule is registered for `dbp check --rules` *)
  Alcotest.(check (list string))
    "typed rule ids"
    [ "T1"; "T2"; "T3"; "T4" ]
    (List.map (fun r -> r.Rules.id) Typed_rules.all_typed_rules)

let suite =
  [
    Alcotest.test_case "T1 typed Rat compare" `Quick test_t1;
    Alcotest.test_case "T1 vector-buried Rat" `Quick test_t1_vec;
    Alcotest.test_case "T1 catches what R3 misses" `Quick
      test_t1_catches_what_r3_misses;
    Alcotest.test_case "T2 Fixed escape" `Quick test_t2;
    Alcotest.test_case "T2 catches alias escape R7 misses" `Quick
      test_t2_catches_alias_escape;
    Alcotest.test_case "T3 mutable capture in spawn" `Quick test_t3;
    Alcotest.test_case "T4 hot-path allocation census" `Quick test_t4;
    Alcotest.test_case "typed tier plumbing" `Quick test_plumbing;
  ]
