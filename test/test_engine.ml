(* Engine equivalence: the O(open-bins) simulator must be bit-identical
   to the retained seed engine ([Simulator_naive]) — same packings,
   same costs, same any-fit violations — across every policy, random
   seeds, and fail_bin storms.  Plus unit tests for the open-bin index
   invariants (opening order, per-bin view-cache invalidation). *)

open Dbp_num
open Dbp_core
open Test_util

(* ---- deep packing equality ----------------------------------------- *)

let bin_record_equal (a : Packing.bin_record) (b : Packing.bin_record) =
  a.Packing.bin_id = b.Packing.bin_id
  && String.equal a.tag b.tag
  && Rat.equal a.capacity b.capacity
  && Rat.equal a.opened b.opened
  && Rat.equal a.closed b.closed
  && a.item_ids = b.item_ids
  && List.length a.placements = List.length b.placements
  && List.for_all2
       (fun (t1, i1) (t2, i2) -> Rat.equal t1 t2 && i1 = i2)
       a.placements b.placements
  && Rat.equal a.max_level b.max_level

let packing_equal (a : Packing.t) (b : Packing.t) =
  String.equal a.Packing.policy_name b.Packing.policy_name
  && Rat.equal a.total_cost b.total_cost
  && a.max_bins = b.max_bins
  && a.any_fit_violations = b.any_fit_violations
  && a.assignment = b.assignment
  && Step_fn.equal a.timeline b.timeline
  && Array.length a.bins = Array.length b.bins
  && Array.for_all2 bin_record_equal a.bins b.bins

let check_equivalent ~what instance policy =
  let fast = Simulator.run ~policy instance in
  let naive = Simulator_naive.run ~policy instance in
  if not (packing_equal fast naive) then
    Alcotest.failf "%s: engines diverge under %s (fast %a vs seed %a)" what
      policy.Policy.name Packing.pp_summary fast Packing.pp_summary naive

(* ---- equivalence on generated workloads ----------------------------- *)

let equivalence_seeds = [ 7L; 19L; 23L; 31L; 42L ]

let test_generated_equivalence () =
  List.iter
    (fun seed ->
      let instance =
        Dbp_workload.Generator.generate ~seed
          { Dbp_workload.Spec.default with Dbp_workload.Spec.count = 400 }
      in
      List.iter
        (check_equivalent
           ~what:(Printf.sprintf "generated seed %Ld" seed)
           instance)
        (Algorithms.all ()))
    equivalence_seeds

let prop_equivalence =
  qcheck ~count:60 "engines bit-identical on random instances"
    (instance_gen ()) (fun instance ->
      List.for_all
        (fun policy ->
          packing_equal
            (Simulator.run ~policy instance)
            (Simulator_naive.run ~policy instance))
        (Algorithms.all ()))

(* ---- equivalence under fail_bin storms ------------------------------ *)

(* Drives both Online engines in lockstep through a seeded random
   session workload with crashes striking between the integer steps,
   asserting identical observable state throughout and identical
   packings at the end.  Mirrors what [Dbp_faults.Injector] does to the
   engine, without the retry machinery in the way. *)
let run_storm ?grid ~seed ~steps policy =
  let rng = Dbp_rand.Pcg32.create seed in
  let fast = Simulator.Online.create ?grid ~policy ~capacity:Rat.one () in
  let naive = Simulator_naive.Online.create ~policy ~capacity:Rat.one () in
  let next_id = ref 0 in
  let active : (int, Rat.t * Rat.t) Hashtbl.t = Hashtbl.create 64 in
  (* id -> (size, arrival) *)
  let stopped = ref [] in
  (* (id, size, arrival, stop) *)
  let stop ~at id =
    let size, arrival = Hashtbl.find active id in
    Hashtbl.remove active id;
    stopped := (id, size, arrival, at) :: !stopped
  in
  let views_agree ~at =
    let vf = Simulator.Online.open_bins fast in
    let vn = Simulator_naive.Online.open_bins naive in
    if vf <> vn then
      Alcotest.failf "open-bin views diverge at t=%a under %s" Rat.pp at
        policy.Policy.name
  in
  for step = 0 to steps - 1 do
    let now = Rat.of_int step in
    (* a few arrivals *)
    let arrivals = 1 + Dbp_rand.Pcg32.next_int rng 3 in
    for _ = 1 to arrivals do
      let size = Rat.make (1 + Dbp_rand.Pcg32.next_int rng 12) 12 in
      let id = !next_id in
      incr next_id;
      let bf = Simulator.Online.arrive fast ~now ~size ~item_id:id in
      let bn = Simulator_naive.Online.arrive naive ~now ~size ~item_id:id in
      Alcotest.(check int) "same placement" bf bn;
      Hashtbl.replace active id (size, now)
    done;
    views_agree ~at:now;
    (* maybe a departure of a random active item that arrived earlier *)
    let departable =
      Hashtbl.fold
        (fun id (_, arrival) acc ->
          if Rat.(arrival < now) then id :: acc else acc)
        active []
      |> List.sort compare
    in
    (match departable with
    | [] -> ()
    | ids ->
        let id = List.nth ids (Dbp_rand.Pcg32.next_int rng (List.length ids)) in
        Simulator.Online.depart fast ~now ~item_id:id;
        Simulator_naive.Online.depart naive ~now ~item_id:id;
        stop ~at:now id;
        views_agree ~at:now);
    (* crash between steps: strike the same bin in both engines *)
    if Dbp_rand.Pcg32.next_int rng 3 = 0 then begin
      let at = Rat.add now (Rat.make 1 2) in
      match Simulator.Online.open_bins fast with
      | [] -> ()
      | views ->
          let victim =
            (List.nth views (Dbp_rand.Pcg32.next_int rng (List.length views)))
              .Bin.bin_id
          in
          let ef = Simulator.Online.fail_bin fast ~now:at ~bin_id:victim in
          let en = Simulator_naive.Online.fail_bin naive ~now:at ~bin_id:victim in
          Alcotest.(check (list (pair int rat)))
            "same evictions in same order" ef en;
          List.iter (fun (id, _) -> stop ~at id) ef;
          views_agree ~at
    end
  done;
  (* drain the survivors *)
  let finis = Rat.of_int steps in
  Hashtbl.fold (fun id _ acc -> id :: acc) active []
  |> List.sort compare
  |> List.iter (fun id ->
         Simulator.Online.depart fast ~now:finis ~item_id:id;
         Simulator_naive.Online.depart naive ~now:finis ~item_id:id;
         stop ~at:finis id);
  views_agree ~at:finis;
  let effective =
    Instance.create ~capacity:Rat.one
      (List.rev_map
         (fun (id, size, arrival, stop) ->
           Item.make ~id ~size ~arrival ~departure:stop)
         (List.sort (fun (a, _, _, _) (b, _, _, _) -> compare b a) !stopped))
  in
  let pf = Simulator.Online.finish fast ~instance:effective in
  let pn = Simulator_naive.Online.finish naive ~instance:effective in
  if not (packing_equal pf pn) then
    Alcotest.failf "storm packings diverge under %s (seed %Ld)"
      policy.Policy.name seed

let test_storm_equivalence () =
  List.iter
    (fun seed ->
      List.iter (run_storm ~seed ~steps:40) (Algorithms.all ()))
    [ 3L; 5L; 8L; 13L; 21L ]

(* Same storms on the fixed-point track: sizes are twelfths and crash
   instants halves, so a 1/24 grid admits every input and the fast
   store's arrive/depart/fail_bin paths run scaled end to end. *)
let test_fixed_storm_equivalence () =
  let grid =
    match Fixed.scale_of_den 24 with Some s -> s | None -> assert false
  in
  List.iter
    (fun seed ->
      List.iter (run_storm ~grid ~seed ~steps:40) (Algorithms.all ()))
    [ 3L; 13L; 21L ]

(* ---- two-track engine: fixed fast path vs forced exact -------------- *)

(* [run] picks the fixed-point track by itself (grid_of_instance);
   [~grid:None] pins the exact track.  The packings must be
   bit-identical — cost strings, timelines, placements, the lot. *)
let test_fixed_vs_exact_runs () =
  List.iter
    (fun seed ->
      let instance =
        Dbp_workload.Generator.generate ~seed
          { Dbp_workload.Spec.default with Dbp_workload.Spec.count = 300 }
      in
      Alcotest.(check bool)
        "workload grid found" true
        (Simulator.grid_of_instance instance <> None);
      List.iter
        (fun policy ->
          let fast = Simulator.run ~policy instance in
          let exact = Simulator.run ~grid:None ~policy instance in
          if not (packing_equal fast exact) then
            Alcotest.failf "fixed/exact tracks diverge under %s (seed %Ld)"
              policy.Policy.name seed)
        (Algorithms.all ()))
    [ 11L; 42L ]

(* Mid-run degrade: the first off-grid size must flip the engine to
   the exact track without disturbing any observable state. *)
let test_degrade_mid_run () =
  let grid =
    match Fixed.scale_of_den 4 with Some s -> s | None -> assert false
  in
  let policy = Best_fit.policy in
  let fast = Simulator.Online.create ~grid ~policy ~capacity:Rat.one () in
  let exact = Simulator.Online.create ~policy ~capacity:Rat.one () in
  Alcotest.(check string)
    "starts fixed" "fixed"
    (Simulator.Online.track_name fast);
  Alcotest.(check string)
    "no grid means exact" "exact"
    (Simulator.Online.track_name exact);
  let drive o =
    ignore (Simulator.Online.arrive o ~now:Rat.zero ~size:(r 1 2) ~item_id:0);
    ignore (Simulator.Online.arrive o ~now:(r 1 2) ~size:(r 1 4) ~item_id:1);
    (* 1/3 is off the 1/4 grid: this arrival degrades the fast engine *)
    ignore (Simulator.Online.arrive o ~now:Rat.one ~size:(r 1 3) ~item_id:2);
    Simulator.Online.depart o ~now:(ri 2) ~item_id:0;
    ignore (Simulator.Online.arrive o ~now:(ri 2) ~size:(r 3 4) ~item_id:3);
    Simulator.Online.depart o ~now:(ri 3) ~item_id:1;
    Simulator.Online.depart o ~now:(ri 3) ~item_id:2;
    Simulator.Online.depart o ~now:(ri 4) ~item_id:3
  in
  drive fast;
  drive exact;
  Alcotest.(check string)
    "degraded to exact" "exact"
    (Simulator.Online.track_name fast);
  let vf = Simulator.Online.open_bins fast
  and ve = Simulator.Online.open_bins exact in
  Alcotest.(check bool) "views identical after degrade" true (vf = ve);
  let instance =
    Instance.create ~capacity:Rat.one
      [
        Item.make ~id:0 ~size:(r 1 2) ~arrival:Rat.zero ~departure:(ri 2);
        Item.make ~id:1 ~size:(r 1 4) ~arrival:(r 1 2) ~departure:(ri 3);
        Item.make ~id:2 ~size:(r 1 3) ~arrival:Rat.one ~departure:(ri 3);
        Item.make ~id:3 ~size:(r 3 4) ~arrival:(ri 2) ~departure:(ri 4);
      ]
  in
  let pf = Simulator.Online.finish fast ~instance
  and pe = Simulator.Online.finish exact ~instance in
  if not (packing_equal pf pe) then
    Alcotest.fail "degraded packing diverges from always-exact"

(* ---- open-bin index invariants -------------------------------------- *)

let bin id = Bin.open_bin ~id ~tag:"t" ~capacity:Rat.one ~now:Rat.zero
let view_ids ix = List.map (fun (v : Bin.view) -> v.Bin.bin_id) (Open_index.views ix)

let test_index_opening_order () =
  let ix = Open_index.create () in
  Alcotest.(check bool) "empty" true (Open_index.is_empty ix);
  let b0 = bin 0 and b1 = bin 1 and b2 = bin 2 and b3 = bin 3 in
  List.iter (Open_index.add ix) [ b0; b1; b2; b3 ];
  Alcotest.(check (list int)) "opening order" [ 0; 1; 2; 3 ] (view_ids ix);
  Open_index.remove ix b1;
  Alcotest.(check (list int)) "middle removal" [ 0; 2; 3 ] (view_ids ix);
  Open_index.remove ix b0;
  Alcotest.(check (list int)) "head removal" [ 2; 3 ] (view_ids ix);
  Open_index.remove ix b3;
  Alcotest.(check (list int)) "tail removal" [ 2 ] (view_ids ix);
  Alcotest.(check int) "cardinal" 1 (Open_index.cardinal ix);
  Alcotest.(check (option int)) "oldest" (Some 2)
    (Option.map (fun (b : Bin.t) -> b.Bin.id) (Open_index.oldest ix));
  Alcotest.(check (option int)) "newest" (Some 2)
    (Option.map (fun (b : Bin.t) -> b.Bin.id) (Open_index.newest ix));
  let b9 = bin 9 in
  Open_index.add ix b9;
  Alcotest.(check (list int)) "append after gaps" [ 2; 9 ] (view_ids ix)

let raises_invalid_arg name f =
  Alcotest.(check bool) name true
    (try
       f ();
       false
     with Invalid_argument _ -> true)

let test_index_misuse () =
  let ix = Open_index.create () in
  let b5 = bin 5 in
  Open_index.add ix b5;
  raises_invalid_arg "double add" (fun () -> Open_index.add ix b5);
  raises_invalid_arg "out-of-order id" (fun () -> Open_index.add ix (bin 3));
  raises_invalid_arg "removing a non-member" (fun () ->
      Open_index.remove ix (bin 7));
  Open_index.remove ix b5;
  raises_invalid_arg "double remove" (fun () -> Open_index.remove ix b5)

let test_view_cache_invalidation () =
  let b = bin 0 in
  let v1 = Bin.view b in
  Alcotest.(check bool) "memoised view physically reused" true
    (v1 == Bin.view b);
  let stub ~id =
    Item.make ~id ~size:(r 1 4) ~arrival:Rat.zero ~departure:Rat.one
  in
  Bin.insert b ~now:Rat.zero (stub ~id:0);
  let v2 = Bin.view b in
  Alcotest.(check bool) "insert invalidates the cache" true (not (v1 == v2));
  Alcotest.(check int) "fresh view sees the insert" 1 v2.Bin.bin_count;
  check_rat "fresh view level" (r 1 4) v2.Bin.bin_level;
  Alcotest.(check bool) "fresh view memoised again" true (v2 == Bin.view b);
  Bin.insert b ~now:Rat.zero (stub ~id:1);
  Bin.remove b ~now:Rat.one (stub ~id:0);
  let v3 = Bin.view b in
  Alcotest.(check bool) "remove invalidates the cache" true (not (v2 == v3));
  Alcotest.(check int) "count after remove" 1 v3.Bin.bin_count;
  Bin.remove b ~now:Rat.two (stub ~id:1);
  Alcotest.(check bool) "empty bin closed" true (not (Bin.is_open b));
  Alcotest.(check int) "closed view count" 0 (Bin.view b).Bin.bin_count

let test_index_views_reuse_cached () =
  let ix = Open_index.create () in
  let b0 = bin 0 and b1 = bin 1 in
  Open_index.add ix b0;
  Open_index.add ix b1;
  let first = Open_index.views ix in
  Bin.insert b1 ~now:Rat.zero
    (Item.make ~id:0 ~size:(r 1 2) ~arrival:Rat.zero ~departure:Rat.one);
  let second = Open_index.views ix in
  (match (first, second) with
  | [ a0; _ ], [ c0; c1 ] ->
      Alcotest.(check bool) "untouched bin's view physically reused" true
        (a0 == c0);
      Alcotest.(check int) "touched bin's view rebuilt" 1 c1.Bin.bin_count
  | _ -> Alcotest.fail "expected two views");
  Alcotest.(check bool) "list rebuilt each call" true
    (Open_index.views ix <> [] )

(* ---- packed event keys: id-overflow audit --------------------------- *)

let test_event_key_boundaries () =
  (* Round trip at the exact corners of the packed layout. *)
  List.iter
    (fun (time_s, arrival, id) ->
      let k = Simulator.pack_event_key ~time_s ~arrival ~id in
      Alcotest.(check bool) "key non-negative" true (k >= 0);
      let t', a', i' = Simulator.unpack_event_key k in
      Alcotest.(check int) "time survives" time_s t';
      Alcotest.(check bool) "kind survives" arrival a';
      Alcotest.(check int) "id survives" id i')
    [
      (0, false, 0);
      (0, true, Simulator.max_fast_item);
      (Simulator.event_key_time_limit - 1, true, Simulator.max_fast_item);
      (Simulator.event_key_time_limit - 1, false, 0);
    ];
  (* An id one past the guard would carry into the kind bit; the
     packer must refuse rather than silently corrupt the order. *)
  List.iter
    (fun (time_s, id) ->
      match Simulator.pack_event_key ~time_s ~arrival:true ~id with
      | _ -> Alcotest.failf "packed out-of-range id %d" id
      | exception Invalid_argument _ -> ())
    [
      (0, Simulator.max_fast_item + 1);
      (0, -1);
      (Simulator.event_key_time_limit, 0);
      (-1, 0);
    ]

let prop_event_key_order =
  qcheck ~count:500 "packed keys sort like (time, departures-first, id)"
    QCheck2.Gen.(
      pair
        (triple (int_bound 1000000) bool (int_bound Simulator.max_fast_item))
        (triple (int_bound 1000000) bool (int_bound Simulator.max_fast_item)))
    (fun ((t1, a1, i1), (t2, a2, i2)) ->
      let k1 = Simulator.pack_event_key ~time_s:t1 ~arrival:a1 ~id:i1 in
      let k2 = Simulator.pack_event_key ~time_s:t2 ~arrival:a2 ~id:i2 in
      let expect =
        if t1 <> t2 then compare t1 t2
        else if a1 <> a2 then compare a1 a2 (* false (departure) first *)
        else compare i1 i2
      in
      compare k1 k2 = expect
      && Simulator.unpack_event_key k1 = (t1, a1, i1))

let suite =
  [
    Alcotest.test_case "generated workloads: engines bit-identical" `Quick
      test_generated_equivalence;
    Alcotest.test_case "event key boundaries" `Quick test_event_key_boundaries;
    prop_event_key_order;
    prop_equivalence;
    Alcotest.test_case "fail_bin storms: engines bit-identical" `Quick
      test_storm_equivalence;
    Alcotest.test_case "fixed-track storms: engines bit-identical" `Quick
      test_fixed_storm_equivalence;
    Alcotest.test_case "fixed vs forced-exact runs bit-identical" `Quick
      test_fixed_vs_exact_runs;
    Alcotest.test_case "mid-run degrade is invisible" `Quick
      test_degrade_mid_run;
    Alcotest.test_case "open-bin index: opening order" `Quick
      test_index_opening_order;
    Alcotest.test_case "open-bin index: misuse raises" `Quick test_index_misuse;
    Alcotest.test_case "bin view cache invalidation" `Quick
      test_view_cache_invalidation;
    Alcotest.test_case "index views reuse cached bin views" `Quick
      test_index_views_reuse_cached;
  ]
