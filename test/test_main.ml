let () =
  Alcotest.run "mintotal-dbp"
    [
      ("rat", Test_rat.suite);
      ("fixed", Test_fixed.suite);
      ("interval", Test_interval.suite);
      ("step_fn", Test_step_fn.suite);
      ("rand", Test_rand.suite);
      ("instance", Test_instance.suite);
      ("simulator", Test_simulator.suite);
      ("engine", Test_engine.suite);
      ("audit", Test_audit.suite);
      ("lint", Test_lint.suite);
      ("typed_lint", Test_typed_lint.suite);
      ("algorithms", Test_algorithms.suite);
      ("opt", Test_opt.suite);
      ("adversary", Test_adversary.suite);
      ("workload", Test_workload.suite);
      ("faults", Test_faults.suite);
      ("cloudgaming", Test_cloudgaming.suite);
      ("analysis", Test_analysis.suite);
      ("extensions", Test_extensions.suite);
      ("constrained", Test_constrained.suite);
      ("offline", Test_offline.suite);
      ("clairvoyant", Test_clairvoyant.suite);
      ("fleet", Test_fleet.suite);
      ("validation", Test_validation.suite);
      ("obs", Test_obs.suite);
      ("checkpoint", Test_checkpoint.suite);
      ("repack", Test_repack.suite);
      ("experiments", Test_experiments.suite);
      ("vec", Test_vec.suite);
      ("serve", Test_serve.suite);
    ]
