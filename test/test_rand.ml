open Dbp_rand
open Test_util

let test_determinism () =
  let a = Splitmix64.create 99L and b = Splitmix64.create 99L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Splitmix64.next_int64 a)
      (Splitmix64.next_int64 b)
  done

let test_copy_and_split () =
  let a = Splitmix64.create 5L in
  let c = Splitmix64.copy a in
  Alcotest.(check int64) "copy replays" (Splitmix64.next_int64 a)
    (Splitmix64.next_int64 c);
  let a = Splitmix64.create 5L in
  let child = Splitmix64.split a in
  Alcotest.(check bool) "split diverges" true
    (Splitmix64.next_int64 child <> Splitmix64.next_int64 a)

let test_float_range () =
  let rng = Splitmix64.create 1L in
  for _ = 1 to 10_000 do
    let f = Splitmix64.next_float rng in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range: %f" f
  done

let test_int_bounds () =
  let rng = Splitmix64.create 2L in
  let seen = Array.make 7 false in
  for _ = 1 to 10_000 do
    let v = Splitmix64.next_int rng 7 in
    if v < 0 || v >= 7 then Alcotest.failf "int out of range: %d" v;
    seen.(v) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen);
  Alcotest.(check bool) "bound 1 is constant" true
    (List.init 20 (fun _ -> Splitmix64.next_int rng 1)
    |> List.for_all (( = ) 0));
  Alcotest.check_raises "bound 0"
    (Invalid_argument "Splitmix64.next_int: bound <= 0") (fun () ->
      ignore (Splitmix64.next_int rng 0))

let mean_of n f =
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. f ()
  done;
  !acc /. float_of_int n

let test_uniform_mean () =
  let rng = Splitmix64.create 3L in
  let m = mean_of 20_000 (fun () -> Dist.uniform rng ~lo:2.0 ~hi:4.0) in
  Alcotest.(check bool) "mean near 3" true (abs_float (m -. 3.0) < 0.05)

let test_exponential () =
  let rng = Splitmix64.create 4L in
  let m = mean_of 20_000 (fun () -> Dist.exponential rng ~rate:2.0) in
  Alcotest.(check bool) "mean near 1/2" true (abs_float (m -. 0.5) < 0.03);
  Alcotest.(check bool) "positive" true (Dist.exponential rng ~rate:0.1 > 0.0);
  Alcotest.check_raises "rate 0" (Invalid_argument "Dist.exponential: rate <= 0")
    (fun () -> ignore (Dist.exponential rng ~rate:0.0))

let test_pareto () =
  let rng = Splitmix64.create 5L in
  for _ = 1 to 1_000 do
    let v = Dist.pareto rng ~shape:2.0 ~scale:1.5 in
    if v < 1.5 then Alcotest.failf "pareto below scale: %f" v
  done

let test_lognormal_normal () =
  let rng = Splitmix64.create 6L in
  let m = mean_of 30_000 (fun () -> Dist.normal rng ~mean:5.0 ~stddev:2.0) in
  Alcotest.(check bool) "normal mean" true (abs_float (m -. 5.0) < 0.1);
  for _ = 1 to 1_000 do
    if Dist.lognormal rng ~mu:0.0 ~sigma:1.0 <= 0.0 then
      Alcotest.fail "lognormal not positive"
  done

let test_bernoulli () =
  let rng = Splitmix64.create 7L in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Dist.bernoulli rng ~p:0.3 then incr hits
  done;
  let frac = float_of_int !hits /. 10_000.0 in
  Alcotest.(check bool) "p near 0.3" true (abs_float (frac -. 0.3) < 0.03)

let test_discrete () =
  let rng = Splitmix64.create 8L in
  let counts = Array.make 3 0 in
  for _ = 1 to 30_000 do
    let i = Dist.discrete rng ~weights:[| 1.0; 2.0; 1.0 |] in
    counts.(i) <- counts.(i) + 1
  done;
  let frac i = float_of_int counts.(i) /. 30_000.0 in
  Alcotest.(check bool) "middle twice as likely" true
    (abs_float (frac 1 -. 0.5) < 0.03 && abs_float (frac 0 -. 0.25) < 0.03);
  Alcotest.check_raises "empty" (Invalid_argument "Dist.discrete: empty weights")
    (fun () -> ignore (Dist.discrete rng ~weights:[||]))

let test_zipf () =
  let z = Dist.Zipf.create ~n:10 ~s:1.1 in
  let total =
    List.init 10 (fun i -> Dist.Zipf.probability z (i + 1))
    |> List.fold_left ( +. ) 0.0
  in
  Alcotest.(check bool) "probabilities sum to 1" true
    (abs_float (total -. 1.0) < 1e-9);
  Alcotest.(check bool) "monotone" true
    (Dist.Zipf.probability z 1 > Dist.Zipf.probability z 2);
  let rng = Splitmix64.create 9L in
  for _ = 1 to 5_000 do
    let v = Dist.Zipf.sample z rng in
    if v < 1 || v > 10 then Alcotest.failf "zipf rank out of range: %d" v
  done;
  (* Empirical rank-1 frequency tracks its probability. *)
  let rng = Splitmix64.create 10L in
  let ones = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Dist.Zipf.sample z rng = 1 then incr ones
  done;
  let expected = Dist.Zipf.probability z 1 in
  Alcotest.(check bool) "rank-1 frequency" true
    (abs_float ((float_of_int !ones /. float_of_int n) -. expected) < 0.02)

let test_rat_wrappers () =
  let open Dbp_num in
  let rng = Splitmix64.create 11L in
  let v = Dist.uniform_rat rng ~lo:0.0 ~hi:1.0 ~den:100 () in
  Alcotest.(check bool) "on grid" true (Rat.den v <= 100);
  Alcotest.(check bool) "in range" true Rat.(v >= Rat.zero && v <= Rat.one)

let prop_tests =
  let open QCheck2 in
  [
    qcheck "next_int respects arbitrary bounds"
      (Gen.pair (Gen.int_range 1 1000) (Gen.int_range 1 1_000_000))
      (fun (bound, seed) ->
        let rng = Splitmix64.create (Int64.of_int seed) in
        let v = Splitmix64.next_int rng bound in
        v >= 0 && v < bound);
  ]

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "copy/split" `Quick test_copy_and_split;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "uniform mean" `Quick test_uniform_mean;
    Alcotest.test_case "exponential" `Quick test_exponential;
    Alcotest.test_case "pareto" `Quick test_pareto;
    Alcotest.test_case "lognormal/normal" `Quick test_lognormal_normal;
    Alcotest.test_case "bernoulli" `Quick test_bernoulli;
    Alcotest.test_case "discrete" `Quick test_discrete;
    Alcotest.test_case "zipf" `Quick test_zipf;
    Alcotest.test_case "rational wrappers" `Quick test_rat_wrappers;
  ]
  @ prop_tests

(* ---- PCG32 ------------------------------------------------------------ *)

let test_pcg_determinism () =
  let a = Pcg32.create 42L and b = Pcg32.create 42L in
  for _ = 1 to 50 do
    Alcotest.(check int32) "same stream" (Pcg32.next_int32 a)
      (Pcg32.next_int32 b)
  done

let test_pcg_streams_differ () =
  let a = Pcg32.create ~stream:1L 42L and b = Pcg32.create ~stream:2L 42L in
  let diverged = ref false in
  for _ = 1 to 20 do
    if Pcg32.next_int32 a <> Pcg32.next_int32 b then diverged := true
  done;
  Alcotest.(check bool) "streams independent" true !diverged

let test_pcg_ranges () =
  let rng = Pcg32.create 7L in
  for _ = 1 to 5_000 do
    let f = Pcg32.next_float rng in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "pcg float out of range: %f" f;
    let v = Pcg32.next_int rng 13 in
    if v < 0 || v >= 13 then Alcotest.failf "pcg int out of range: %d" v
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Pcg32.next_int: bound <= 0")
    (fun () -> ignore (Pcg32.next_int rng 0))

let test_pcg_uniformity () =
  let rng = Pcg32.create 9L in
  let counts = Array.make 4 0 in
  let n = 40_000 in
  for _ = 1 to n do
    let i = Pcg32.next_int rng 4 in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iter
    (fun c ->
      let frac = float_of_int c /. float_of_int n in
      if abs_float (frac -. 0.25) > 0.02 then
        Alcotest.failf "pcg bucket skew: %f" frac)
    counts

let suite =
  suite
  @ [
      Alcotest.test_case "pcg32 determinism" `Quick test_pcg_determinism;
      Alcotest.test_case "pcg32 streams" `Quick test_pcg_streams_differ;
      Alcotest.test_case "pcg32 ranges" `Quick test_pcg_ranges;
      Alcotest.test_case "pcg32 uniformity" `Quick test_pcg_uniformity;
    ]
