(* Negative tests: Packing.validate must catch every class of
   corruption, and the Online stepping API must agree exactly with the
   batch runner. *)

open Dbp_num
open Dbp_core
open Test_util

let mk ?(size = r 1 2) a d =
  Item.make ~id:0 ~size ~arrival:(ri a) ~departure:(ri d)

let inst items = Instance.create ~capacity:Rat.one items

let base_packing () =
  Simulator.run ~policy:First_fit.policy
    (inst [ mk 0 4; mk ~size:(r 1 4) 1 3; mk 5 6 ])

let expect_invalid name packing =
  match Packing.validate packing with
  | Error _ -> ()
  | Ok () -> Alcotest.failf "%s: corruption not detected" name

let test_catches_wrong_assignment () =
  let p = base_packing () in
  let assignment = Array.copy p.Packing.assignment in
  (* point item 0 at a bin that never recorded it *)
  assignment.(0) <- p.Packing.assignment.(2);
  expect_invalid "wrong assignment" { p with Packing.assignment }

let test_catches_truncated_usage_period () =
  let p = base_packing () in
  let bins = Array.copy p.Packing.bins in
  bins.(0) <- { bins.(0) with Packing.closed = ri 2 };
  (* item 0 lives to t=4 but its bin now "closes" at 2 *)
  expect_invalid "truncated usage period" { p with Packing.bins }

let test_catches_capacity_violation () =
  let p = base_packing () in
  let bins = Array.copy p.Packing.bins in
  (* shrink bin 0's capacity below its content *)
  bins.(0) <- { bins.(0) with Packing.capacity = r 1 4 };
  expect_invalid "capacity violation" { p with Packing.bins }

let test_catches_wrong_cost () =
  let p = base_packing () in
  expect_invalid "wrong total cost"
    { p with Packing.total_cost = Rat.add p.Packing.total_cost Rat.one }

let test_catches_wrong_timeline () =
  let p = base_packing () in
  expect_invalid "wrong timeline"
    { p with Packing.timeline = Step_fn.of_deltas [ (ri 0, 1); (ri 100, -1) ] }

let test_catches_wrong_max_bins () =
  let p = base_packing () in
  expect_invalid "wrong max bins" { p with Packing.max_bins = 99 }

(* ---- Online vs batch equivalence --------------------------------- *)

let replay_via_online policy instance =
  let online =
    Simulator.Online.create ~policy ~capacity:(Instance.capacity instance) ()
  in
  List.iter
    (fun (e : Event.t) ->
      match e.Event.kind with
      | Event.Arrival ->
          ignore
            (Simulator.Online.arrive online ~now:e.Event.time
               ~size:e.Event.item.Item.size ~item_id:e.Event.item.Item.id)
      | Event.Departure ->
          Simulator.Online.depart online ~now:e.Event.time
            ~item_id:e.Event.item.Item.id)
    (Event.of_instance instance);
  Simulator.Online.finish online ~instance

let prop_tests =
  [
    qcheck ~count:120 "Online replay = Simulator.run, bit for bit"
      (instance_gen ~max_items:25 ()) (fun instance ->
        List.for_all
          (fun policy ->
            let batch = Simulator.run ~policy instance in
            let stepped = replay_via_online policy instance in
            batch.Packing.assignment = stepped.Packing.assignment
            && Rat.equal batch.Packing.total_cost stepped.Packing.total_cost
            && Step_fn.equal batch.Packing.timeline stepped.Packing.timeline)
          [ First_fit.policy; Best_fit.policy; Next_fit.policy ]);
    qcheck ~count:120 "validate accepts only the genuine article"
      (instance_gen ~max_items:20 ()) (fun instance ->
        let p = Simulator.run ~policy:Best_fit.policy instance in
        Packing.validate p = Ok ()
        && Packing.validate
             { p with Packing.total_cost = Rat.add p.Packing.total_cost Rat.one }
           <> Ok ());
  ]

let suite =
  [
    Alcotest.test_case "catches wrong assignment" `Quick
      test_catches_wrong_assignment;
    Alcotest.test_case "catches truncated usage period" `Quick
      test_catches_truncated_usage_period;
    Alcotest.test_case "catches capacity violation" `Quick
      test_catches_capacity_violation;
    Alcotest.test_case "catches wrong cost" `Quick test_catches_wrong_cost;
    Alcotest.test_case "catches wrong timeline" `Quick
      test_catches_wrong_timeline;
    Alcotest.test_case "catches wrong max bins" `Quick
      test_catches_wrong_max_bins;
  ]
  @ prop_tests
