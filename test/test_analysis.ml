open Dbp_num
open Dbp_core
open Dbp_analysis
open Test_util

(* ---- Theorem_bounds -------------------------------------------------- *)

let test_bound_formulas () =
  check_rat "anyfit lower" (ri 7) (Theorem_bounds.anyfit_lower ~mu:(ri 7));
  check_rat "eq (1)" (r 8 5)
    (Theorem_bounds.anyfit_construction_ratio ~k:4 ~mu:(ri 2));
  check_rat "ff large" (ri 3) (Theorem_bounds.ff_large ~k:(ri 3));
  (* k=2, mu=1: 2*1 + 12 + 1 = 15 *)
  check_rat "ff small" (ri 15) (Theorem_bounds.ff_small ~k:Rat.two ~mu:Rat.one);
  check_rat "ff general" (ri 15) (Theorem_bounds.ff_general ~mu:Rat.one);
  check_rat "mff oblivious at mu=1" (ri 9)
    (Theorem_bounds.mff_oblivious ~mu:Rat.one);
  check_rat "mff known at mu=1" (ri 9) (Theorem_bounds.mff_known_mu ~mu:Rat.one);
  check_rat "bestfit forced" (r 5 2)
    (Theorem_bounds.bestfit_forced_ratio ~k:5 ~mu:Rat.two ~iterations:3);
  Alcotest.(check bool) "ff_small rejects k<=1" true
    (try
       ignore (Theorem_bounds.ff_small ~k:Rat.one ~mu:Rat.one);
       false
     with Invalid_argument _ -> true)

let test_mff_known_beats_oblivious () =
  (* 8/7 mu + 55/7 - (mu + 8) = (mu - 1)/7: the semi-online bound is
     strictly better for every mu > 1 and they coincide at mu = 1. *)
  check_rat "equal at mu=1" (Theorem_bounds.mff_known_mu ~mu:Rat.one)
    (Theorem_bounds.mff_oblivious ~mu:Rat.one);
  List.iter
    (fun mu_i ->
      let mu = ri mu_i in
      let diff =
        Rat.sub (Theorem_bounds.mff_oblivious ~mu)
          (Theorem_bounds.mff_known_mu ~mu)
      in
      check_rat
        (Printf.sprintf "gap (mu-1)/7 at mu=%d" mu_i)
        (Rat.div_int (Rat.sub mu Rat.one) 7)
        diff)
    [ 2; 5; 7; 20 ]

(* ---- Ratio ------------------------------------------------------------ *)

let mk ?(size = r 1 2) a d =
  Item.make ~id:0 ~size ~arrival:(ri a) ~departure:(ri d)

let inst items = Instance.create ~capacity:Rat.one items

let test_ratio_measure () =
  let instance = Dbp_workload.Patterns.fragmentation ~k:3 ~mu:(ri 4) in
  let packing = Simulator.run ~policy:First_fit.policy instance in
  let ratio = Ratio.measure packing in
  Alcotest.(check bool) "exact" true ratio.Ratio.exact;
  check_rat "ratio 12/6 = 2" Rat.two (Ratio.value_exn ratio);
  Alcotest.(check bool) "confirmed against mu" true
    (Ratio.check_bound ratio ~bound:(ri 4) = Ratio.Confirmed);
  Alcotest.(check bool) "violated against 1.5" true
    (Ratio.check_bound ratio ~bound:(r 3 2) = Ratio.Violated)

let test_ratio_on_optimal_packing () =
  let instance = inst [ mk 0 2; mk 1 3 ] in
  let packing = Simulator.run ~policy:First_fit.policy instance in
  let ratio = Ratio.measure packing in
  check_rat "ratio 1" Rat.one (Ratio.value_exn ratio)

(* ---- Table / Chart ----------------------------------------------------- *)

let test_table () =
  let t = Table.create ~title:"demo" ~columns:[ "a"; "b" ] in
  Table.add_row t [ "1"; "hello" ];
  Table.add_rows t [ [ "2"; "y" ]; [ "3"; "z" ] ];
  Alcotest.(check int) "rows" 3 (Table.row_count t);
  let rendered = Table.render t in
  Alcotest.(check bool) "has title" true
    (Test_util.contains ~sub:"demo" rendered);
  Alcotest.(check bool) "wrong arity rejected" true
    (try
       Table.add_row t [ "only-one" ];
       false
     with Invalid_argument _ -> true);
  let md = Table.render_markdown t in
  Alcotest.(check bool) "markdown rule" true
    (Test_util.contains ~sub:"| --- | --- |" md)

let test_chart () =
  let rendered =
    Chart.render ~title:"curve"
      ~series:
        [ ("measured", [ (1.0, 1.0); (2.0, 4.0) ]);
          ("bound", [ (1.0, 2.0); (2.0, 5.0) ]) ]
      ()
  in
  Alcotest.(check bool) "has legend" true
    (Test_util.contains ~sub:"measured" rendered);
  Alcotest.(check bool) "empty series rejected" true
    (try
       ignore (Chart.render ~title:"x" ~series:[ ("e", []) ] ());
       false
     with Invalid_argument _ -> true)

(* ---- Ff_decomposition -------------------------------------------------- *)

let analyse_ff ?k instance =
  let packing = Simulator.run ~policy:First_fit.policy instance in
  Ff_decomposition.analyse ?k packing

let test_decomposition_no_violations_fragmentation () =
  let report = analyse_ff (Dbp_workload.Patterns.fragmentation ~k:4 ~mu:(ri 3)) in
  Alcotest.(check (list string)) "no violations" [] report.Ff_decomposition.violations

let test_decomposition_no_violations_sawtooth () =
  let report =
    analyse_ff ~k:(ri 4)
      (Dbp_workload.Patterns.sawtooth ~teeth:4 ~per_tooth:6 ~mu:(ri 3))
  in
  Alcotest.(check (list string)) "no violations" []
    report.Ff_decomposition.violations

let test_decomposition_identities () =
  let instance = Dbp_workload.Patterns.sawtooth ~teeth:3 ~per_tooth:5 ~mu:(ri 4) in
  let report = analyse_ff instance in
  (* eq (6): total cost = left + span *)
  check_rat "cost identity"
    report.Ff_decomposition.packing.Packing.total_cost
    (Rat.add report.Ff_decomposition.cost_left report.Ff_decomposition.span);
  Alcotest.(check bool) "ineq 10 holds" true
    (Ff_decomposition.upper_bound_inequality_10 report);
  Alcotest.(check bool) "ineq 15 holds" true
    (Ff_decomposition.demand_inequality_15 report)

let test_decomposition_single_bin () =
  let report = analyse_ff (inst [ mk 0 2; mk 1 3 ]) in
  Alcotest.(check (list string)) "no violations" []
    report.Ff_decomposition.violations;
  Alcotest.(check int) "no sub-periods" 0
    (List.length report.Ff_decomposition.sub_periods);
  Alcotest.(check int) "no charges" 0 report.Ff_decomposition.charge_count

let test_classification () =
  let sp bin index =
    {
      Ff_decomposition.bin;
      index;
      period = Interval.make Rat.zero Rat.one;
      reference_point = None;
      reference_bin = None;
    }
  in
  let check_case name expected a b =
    match (Ff_decomposition.classify a b, expected) with
    | Some got, Some want ->
        Alcotest.(check bool) name true (got = want)
    | None, None -> ()
    | _ -> Alcotest.failf "%s: classification mismatch" name
  in
  check_case "case I" (Some Ff_decomposition.I) (sp 1 2) (sp 1 3);
  check_case "case II" (Some Ff_decomposition.II) (sp 1 1) (sp 1 2);
  check_case "case III" (Some Ff_decomposition.III) (sp 1 2) (sp 2 2);
  check_case "case IV" (Some Ff_decomposition.IV) (sp 1 1) (sp 2 2);
  check_case "case V" (Some Ff_decomposition.V) (sp 1 1) (sp 2 1);
  check_case "same period" None (sp 1 1) (sp 1 1)

let prop_tests =
  [
    qcheck ~count:300 "decomposition clean on random workloads"
      (instance_gen ~max_items:25 ()) (fun instance ->
        let report = analyse_ff instance in
        report.Ff_decomposition.violations = []);
    qcheck ~count:300 "decomposition clean on small items (with ineq 8/11)"
      (small_instance_gen ~k:4 ()) (fun instance ->
        let report = analyse_ff ~k:(ri 4) instance in
        report.Ff_decomposition.violations = []);
    qcheck ~count:100 "theorem 5 bound respected empirically"
      (instance_gen ~max_items:15 ()) (fun instance ->
        let packing = Simulator.run ~policy:First_fit.policy instance in
        let ratio = Ratio.measure packing in
        let bound = Theorem_bounds.ff_general ~mu:(Instance.mu instance) in
        Ratio.check_bound ratio ~bound <> Ratio.Violated);
    qcheck ~count:100 "theorem 4 bound respected on small items"
      (small_instance_gen ~k:4 ~max_items:15 ()) (fun instance ->
        let packing = Simulator.run ~policy:First_fit.policy instance in
        let ratio = Ratio.measure packing in
        let bound =
          Theorem_bounds.ff_small ~k:(ri 4) ~mu:(Instance.mu instance)
        in
        Ratio.check_bound ratio ~bound <> Ratio.Violated);
    qcheck ~count:100 "MFF bound respected empirically"
      (instance_gen ~max_items:15 ()) (fun instance ->
        let packing =
          Simulator.run ~policy:Modified_first_fit.policy_mu_oblivious instance
        in
        let ratio = Ratio.measure packing in
        let bound = Theorem_bounds.mff_oblivious ~mu:(Instance.mu instance) in
        Ratio.check_bound ratio ~bound <> Ratio.Violated);
  ]

let suite =
  [
    Alcotest.test_case "bound formulas" `Quick test_bound_formulas;
    Alcotest.test_case "mff known vs oblivious" `Quick
      test_mff_known_beats_oblivious;
    Alcotest.test_case "ratio measurement" `Quick test_ratio_measure;
    Alcotest.test_case "ratio on optimal packing" `Quick
      test_ratio_on_optimal_packing;
    Alcotest.test_case "table" `Quick test_table;
    Alcotest.test_case "chart" `Quick test_chart;
    Alcotest.test_case "decomposition: fragmentation" `Quick
      test_decomposition_no_violations_fragmentation;
    Alcotest.test_case "decomposition: sawtooth" `Quick
      test_decomposition_no_violations_sawtooth;
    Alcotest.test_case "decomposition identities" `Quick
      test_decomposition_identities;
    Alcotest.test_case "decomposition: single bin" `Quick
      test_decomposition_single_bin;
    Alcotest.test_case "table 2 classification" `Quick test_classification;
  ]
  @ prop_tests

(* Deterministic regression: dense small-item workloads where the
   Case V machinery actually fires (joint-periods get paired), so the
   pairing/Lemma 3/Lemma 4 code paths are exercised, not just reached
   vacuously. *)
let dense_small_spec =
  Dbp_workload.Spec.small_items
    (Dbp_workload.Spec.with_target_mu
       { Dbp_workload.Spec.default with
         Dbp_workload.Spec.count = 150;
         arrivals = Dbp_workload.Spec.Poisson { rate = 8.0 } }
       ~mu:6.0)
    ~k:4

let test_joint_periods_exercised () =
  let joints_found = ref 0 in
  List.iter
    (fun seed ->
      let instance = Dbp_workload.Generator.generate ~seed dense_small_spec in
      let report = analyse_ff ~k:(ri 4) instance in
      Alcotest.(check (list string))
        (Printf.sprintf "no violations at seed %Ld" seed)
        [] report.Ff_decomposition.violations;
      joints_found :=
        !joints_found
        + List.length report.Ff_decomposition.pairing.Ff_decomposition.joints)
    [ 1L; 2L; 4L; 5L; 8L ];
  Alcotest.(check bool) "pairing path exercised" true (!joints_found >= 3)

let dense_props =
  [
    qcheck ~count:60 "decomposition clean on dense small-item loads"
      QCheck2.Gen.(map Int64.of_int (int_range 1 10_000))
      (fun seed ->
        let instance = Dbp_workload.Generator.generate ~seed dense_small_spec in
        let report = analyse_ff ~k:(ri 4) instance in
        report.Ff_decomposition.violations = []);
  ]

let suite =
  suite
  @ [
      Alcotest.test_case "joint-period pairing exercised" `Quick
        test_joint_periods_exercised;
    ]
  @ dense_props

(* ---- Packing_diff ------------------------------------------------------ *)

let test_packing_diff () =
  let instance =
    inst
      [
        mk ~size:(r 1 2) 0 10; mk ~size:(r 1 2) 0 2;
        mk ~size:(r 1 2) 1 10; mk ~size:(r 1 2) 1 3;
      ]
  in
  let ff = Simulator.run ~policy:First_fit.policy instance in
  let same = Packing_diff.compare ff ff in
  Alcotest.(check bool) "self-diff is empty" true
    (same.Packing_diff.first_divergence = None
    && same.Packing_diff.split_pairs = 0
    && same.Packing_diff.joined_pairs = 0
    && Rat.is_zero same.Packing_diff.cost_gap);
  let p = Dbp_clairvoyant.Predictor.build Dbp_clairvoyant.Predictor.Exact instance in
  let aligned =
    Simulator.run ~policy:(Dbp_clairvoyant.Duration_fit.aligned_fit p) instance
  in
  let diff = Packing_diff.compare ff aligned in
  Alcotest.(check bool) "divergence found" true
    (diff.Packing_diff.first_divergence <> None);
  Alcotest.(check bool) "FF costs more here" true
    Rat.(diff.Packing_diff.cost_gap > Rat.zero);
  Alcotest.(check bool) "pairs reshuffled" true
    (diff.Packing_diff.split_pairs + diff.Packing_diff.joined_pairs > 0)

let diff_props =
  [
    qcheck ~count:100 "diff is antisymmetric in cost"
      (instance_gen ~max_items:20 ()) (fun instance ->
        let a = Simulator.run ~policy:First_fit.policy instance in
        let b = Simulator.run ~policy:Best_fit.policy instance in
        let d1 = Packing_diff.compare a b and d2 = Packing_diff.compare b a in
        Rat.equal d1.Packing_diff.cost_gap (Rat.neg d2.Packing_diff.cost_gap)
        && d1.Packing_diff.split_pairs = d2.Packing_diff.joined_pairs);
    qcheck ~count:100 "identical policies yield empty diff"
      (instance_gen ~max_items:20 ()) (fun instance ->
        let a = Simulator.run ~policy:Worst_fit.policy instance in
        let b = Simulator.run ~policy:Worst_fit.policy instance in
        let d = Packing_diff.compare a b in
        d.Packing_diff.first_divergence = None
        && d.Packing_diff.split_pairs = 0);
  ]

let suite =
  suite
  @ [ Alcotest.test_case "packing diff" `Quick test_packing_diff ]
  @ diff_props

(* ---- histogram and SVG rendering --------------------------------------- *)

let test_histogram () =
  let rendered =
    Chart.histogram ~title:"demo" ~bins:4 [ 0.0; 1.0; 1.0; 2.0; 3.9 ]
  in
  Alcotest.(check bool) "has title" true (contains ~sub:"demo" rendered);
  Alcotest.(check bool) "has bars" true (contains ~sub:"#" rendered);
  Alcotest.(check int) "one line per bin + title" 5
    (List.length
       (List.filter (fun l -> l <> "") (String.split_on_char '\n' rendered))
    - 1 + 1);
  Alcotest.(check bool) "empty rejected" true
    (try
       ignore (Chart.histogram ~title:"x" []);
       false
     with Invalid_argument _ -> true)

let test_svg_render () =
  let instance =
    inst [ mk 0 4; mk ~size:(r 2 3) 1 3; mk 5 6 ]
  in
  let packing = Simulator.run ~policy:First_fit.policy instance in
  let svg = Timeline_render.render_svg packing in
  Alcotest.(check bool) "svg document" true (contains ~sub:"<svg" svg);
  Alcotest.(check bool) "closes" true (contains ~sub:"</svg>" svg);
  (* one background rect per bin and one rect per item *)
  let rects =
    String.split_on_char '<' svg
    |> List.filter (fun s -> String.length s > 4 && String.sub s 0 4 = "rect")
    |> List.length
  in
  Alcotest.(check int) "rect count" (Packing.bins_used packing + 3) rects;
  Alcotest.(check bool) "items titled" true (contains ~sub:"<title>item 0" svg)

let suite =
  suite
  @ [
      Alcotest.test_case "histogram" `Quick test_histogram;
      Alcotest.test_case "svg render" `Quick test_svg_render;
    ]
