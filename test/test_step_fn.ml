open Dbp_num
open Test_util

let t n = ri n

let test_of_deltas () =
  let f = Step_fn.of_deltas [ (t 0, 1); (t 2, -1); (t 1, 1); (t 3, -1) ] in
  Alcotest.(check int) "before" 0 (Step_fn.value_at f (r (-1) 1));
  Alcotest.(check int) "at 0" 1 (Step_fn.value_at f (t 0));
  Alcotest.(check int) "at 1" 2 (Step_fn.value_at f (t 1));
  Alcotest.(check int) "at 3/2" 2 (Step_fn.value_at f (r 3 2));
  Alcotest.(check int) "at 2" 1 (Step_fn.value_at f (t 2));
  Alcotest.(check int) "at 3" 0 (Step_fn.value_at f (t 3));
  Alcotest.(check int) "max" 2 (Step_fn.max_value f);
  (* 1 on [0,1), 2 on [1,2), 1 on [2,3) *)
  check_rat "integral" (ri 4) (Step_fn.integral f)

let test_of_deltas_merge_equal_times () =
  let f = Step_fn.of_deltas [ (t 0, 1); (t 0, 1); (t 1, -2) ] in
  Alcotest.(check int) "merged jump" 2 (Step_fn.value_at f (t 0));
  check_rat "integral" (ri 2) (Step_fn.integral f)

let test_of_deltas_cancelling () =
  (* A bin that opens and closes at the same instant vanishes. *)
  let f = Step_fn.of_deltas [ (t 1, 1); (t 1, -1) ] in
  Alcotest.check step_fn "empty" Step_fn.empty f

let test_of_deltas_non_cancelling () =
  Alcotest.(check bool) "rejects unbalanced" true
    (try
       ignore (Step_fn.of_deltas [ (t 0, 1) ]);
       false
     with Invalid_argument _ -> true)

let test_of_breakpoints () =
  let f = Step_fn.of_breakpoints [ (t 0, 2); (t 1, 2); (t 2, 1); (t 4, 0) ] in
  (* consecutive equal values are canonicalised away *)
  Alcotest.(check int) "breakpoint count" 3 (List.length (Step_fn.breakpoints f));
  check_rat "integral" (ri 6) (Step_fn.integral f);
  Alcotest.(check bool) "rejects unsorted" true
    (try
       ignore (Step_fn.of_breakpoints [ (t 2, 1); (t 1, 0) ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "rejects nonzero tail" true
    (try
       ignore (Step_fn.of_breakpoints [ (t 0, 1) ]);
       false
     with Invalid_argument _ -> true)

let test_integral_over () =
  let f = Step_fn.of_deltas [ (t 0, 2); (t 4, -2) ] in
  check_rat "inside" (ri 4) (Step_fn.integral_over f (Interval.make (t 1) (t 3)));
  check_rat "clipped" (ri 2)
    (Step_fn.integral_over f (Interval.make (t 3) (t 10)));
  check_rat "outside" Rat.zero
    (Step_fn.integral_over f (Interval.make (t 5) (t 10)))

let test_support_and_measure () =
  let f = Step_fn.of_deltas [ (t 0, 1); (t 1, -1); (t 3, 2); (t 4, -2) ] in
  (match Step_fn.support f with
  | Some s -> Alcotest.check interval "support" (Interval.make (t 0) (t 4)) s
  | None -> Alcotest.fail "expected support");
  check_rat "measure positive" (ri 2) (Step_fn.measure_positive f);
  Alcotest.(check (option interval)) "empty support" None
    (Step_fn.support Step_fn.empty)

let test_add_scale_map () =
  let f = Step_fn.of_deltas [ (t 0, 1); (t 2, -1) ] in
  let g = Step_fn.of_deltas [ (t 1, 1); (t 3, -1) ] in
  let s = Step_fn.add f g in
  Alcotest.(check int) "sum at 3/2" 2 (Step_fn.value_at s (r 3 2));
  check_rat "sum integral" (ri 4) (Step_fn.integral s);
  check_rat "scale integral" (ri 6) (Step_fn.integral (Step_fn.scale s 3) |> fun x -> Rat.div_int x 2);
  let doubled = Step_fn.map s ~f:(fun v -> 2 * v) in
  check_rat "map integral" (ri 8) (Step_fn.integral doubled)

let deltas_gen =
  QCheck2.Gen.(
    let point = pair (int_range 0 30) (int_range 1 3) in
    map
      (fun pts ->
        List.concat_map
          (fun (time, v) -> [ (ri time, v); (ri (time + 1 + (v mod 3)), -v) ])
          pts)
      (list_size (int_range 0 15) point))

let prop_tests =
  let open QCheck2 in
  [
    qcheck "integral = -sum(v * t) for balanced deltas" deltas_gen
      (fun deltas ->
        (* a +v at a and -v at b contribute v*(b-a) = -(v*a) - (-v*b) *)
        let f = Step_fn.of_deltas deltas in
        let signed =
          List.fold_left
            (fun acc (time, v) -> Rat.sub acc (Rat.mul_int time v))
            Rat.zero deltas
        in
        Rat.equal (Step_fn.integral f) signed);
    qcheck "add integrals" (Gen.pair deltas_gen deltas_gen) (fun (d1, d2) ->
        let f = Step_fn.of_deltas d1 and g = Step_fn.of_deltas d2 in
        Rat.equal
          (Step_fn.integral (Step_fn.add f g))
          (Rat.add (Step_fn.integral f) (Step_fn.integral g)));
    qcheck "max of add bounded by sum of maxes" (Gen.pair deltas_gen deltas_gen)
      (fun (d1, d2) ->
        let f = Step_fn.of_deltas d1 and g = Step_fn.of_deltas d2 in
        Step_fn.max_value (Step_fn.add f g)
        <= Step_fn.max_value f + Step_fn.max_value g);
    qcheck "measure_positive <= support length" deltas_gen (fun d ->
        let f = Step_fn.of_deltas d in
        match Step_fn.support f with
        | None -> Rat.is_zero (Step_fn.measure_positive f)
        | Some s -> Rat.(Step_fn.measure_positive f <= Interval.length s));
    qcheck "breakpoints round-trip" deltas_gen (fun d ->
        let f = Step_fn.of_deltas d in
        Step_fn.equal f (Step_fn.of_breakpoints (Step_fn.breakpoints f)));
  ]

let suite =
  [
    Alcotest.test_case "of_deltas" `Quick test_of_deltas;
    Alcotest.test_case "equal-time deltas merge" `Quick
      test_of_deltas_merge_equal_times;
    Alcotest.test_case "cancelling deltas" `Quick test_of_deltas_cancelling;
    Alcotest.test_case "unbalanced deltas" `Quick test_of_deltas_non_cancelling;
    Alcotest.test_case "of_breakpoints" `Quick test_of_breakpoints;
    Alcotest.test_case "integral_over" `Quick test_integral_over;
    Alcotest.test_case "support/measure" `Quick test_support_and_measure;
    Alcotest.test_case "add/scale/map" `Quick test_add_scale_map;
  ]
  @ prop_tests
