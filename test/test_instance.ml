open Dbp_num
open Dbp_core
open Test_util

let mk ?(size = r 1 2) a d =
  Item.make ~id:0 ~size ~arrival:(ri a) ~departure:(ri d)

let test_item_validation () =
  Alcotest.(check bool) "zero size rejected" true
    (try
       ignore (Item.make ~id:0 ~size:Rat.zero ~arrival:Rat.zero ~departure:Rat.one);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "d <= a rejected" true
    (try
       ignore (mk 2 2);
       false
     with Invalid_argument _ -> true)

let test_item_accessors () =
  let i = mk ~size:(r 1 4) 1 4 in
  check_rat "length" (ri 3) (Item.length i);
  check_rat "demand = size * length" (r 3 4) (Item.demand i);
  Alcotest.check interval "interval" (Interval.make (ri 1) (ri 4))
    (Item.interval i);
  Alcotest.(check bool) "active at arrival" true (Item.active_at i (ri 1));
  Alcotest.(check bool) "active mid" true (Item.active_at i (r 7 2));
  Alcotest.(check bool) "not active at departure" false
    (Item.active_at i (ri 4));
  Alcotest.(check bool) "not active before" false (Item.active_at i Rat.zero)

let test_instance_validation () =
  Alcotest.(check bool) "empty rejected" true
    (try
       ignore (Instance.create ~capacity:Rat.one []);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "oversize item rejected" true
    (try
       ignore (Instance.create ~capacity:(r 1 4) [ mk 0 1 ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad capacity rejected" true
    (try
       ignore (Instance.create ~capacity:Rat.zero [ mk 0 1 ]);
       false
     with Invalid_argument _ -> true)

let test_instance_renumbers () =
  let inst = Instance.create ~capacity:Rat.one [ mk 0 1; mk 1 2; mk 2 3 ] in
  Alcotest.(check (list int)) "sequential ids" [ 0; 1; 2 ]
    (Array.to_list (Array.map (fun (i : Item.t) -> i.id) (Instance.items inst)))

(* Figure 1: the span of an item list with a coverage gap. *)
let test_stats () =
  let inst =
    Instance.create ~capacity:Rat.one
      [ mk 0 2; mk ~size:(r 1 4) 1 3; mk 5 6 ]
  in
  check_rat "span skips the gap" (ri 4) (Instance.span inst);
  Alcotest.check interval "packing period" (Interval.make (ri 0) (ri 6))
    (Instance.packing_period inst);
  check_rat "u(R)" (Rat.sum [ ri 1; r 1 2; r 1 2 ]) (Instance.total_demand inst);
  check_rat "min len" (ri 1) (Instance.min_interval_length inst);
  check_rat "max len" (ri 2) (Instance.max_interval_length inst);
  check_rat "mu" (ri 2) (Instance.mu inst);
  check_rat "max size" (r 1 2) (Instance.max_size inst);
  check_rat "min size" (r 1 4) (Instance.min_size inst)

let test_active () =
  let inst = Instance.create ~capacity:Rat.one [ mk 0 2; mk 1 3; mk 5 6 ] in
  Alcotest.(check int) "two active at 3/2" 2
    (List.length (Instance.active_at inst (r 3 2)));
  Alcotest.(check int) "none active at 4" 0
    (List.length (Instance.active_at inst (ri 4)));
  (* departures are exclusive, arrivals inclusive *)
  Alcotest.(check int) "one active at 2" 1
    (List.length (Instance.active_at inst (ri 2)));
  let counts = Instance.active_count inst in
  Alcotest.(check int) "peak actives" 2 (Step_fn.max_value counts);
  check_rat "total item-time" (ri 5) (Step_fn.integral counts);
  check_rat "span = positive measure" (Instance.span inst)
    (Step_fn.measure_positive counts)

let test_size_regimes () =
  let small =
    Instance.create ~capacity:Rat.one [ mk ~size:(r 1 5) 0 1; mk ~size:(r 1 8) 0 1 ]
  in
  Alcotest.(check bool) "all below 1/4" true (Instance.sizes_below small (r 1 4));
  Alcotest.(check bool) "not all below 1/6" false
    (Instance.sizes_below small (r 1 6));
  Alcotest.(check bool) "all at least 1/8" true
    (Instance.sizes_at_least small (r 1 8))

let test_event_times_and_restrict () =
  let inst = Instance.create ~capacity:Rat.one [ mk 0 2; mk 0 3; mk 2 4 ] in
  Alcotest.(check int) "distinct event times" 4
    (List.length (Instance.event_times inst));
  (match Instance.restrict inst ~f:(fun i -> Rat.(i.Item.departure > ri 2)) with
  | Some sub -> Alcotest.(check int) "restricted size" 2 (Instance.size sub)
  | None -> Alcotest.fail "expected Some");
  Alcotest.(check bool) "restrict to nothing" true
    (Instance.restrict inst ~f:(fun _ -> false) = None)

let test_event_ordering () =
  let inst = Instance.create ~capacity:Rat.one [ mk 0 2; mk 2 4 ] in
  let events = Event.of_instance inst in
  let kinds =
    List.map
      (fun (e : Event.t) ->
        match e.kind with Event.Arrival -> "a" | Event.Departure -> "d")
      events
  in
  (* at t=2 the departure of item 0 precedes the arrival of item 1 *)
  Alcotest.(check (list string)) "departure first at ties" [ "a"; "d"; "a"; "d" ]
    kinds

let prop_tests =
  [
    qcheck ~count:100 "span <= sum of lengths" (instance_gen ()) (fun inst ->
        Rat.(
          Instance.span inst
          <= Rat.sum
               (List.map Item.length (Array.to_list (Instance.items inst)))));
    qcheck ~count:100 "span >= max single length" (instance_gen ()) (fun inst ->
        Rat.(Instance.span inst >= Instance.max_interval_length inst));
    qcheck ~count:100 "mu >= 1" (instance_gen ()) (fun inst ->
        Rat.(Instance.mu inst >= Rat.one));
    qcheck ~count:100 "active_count integral = total item time"
      (instance_gen ()) (fun inst ->
        Rat.equal
          (Step_fn.integral (Instance.active_count inst))
          (Rat.sum
             (List.map Item.length (Array.to_list (Instance.items inst)))));
    qcheck ~count:100 "span = measure of positive active count"
      (instance_gen ()) (fun inst ->
        Rat.equal (Instance.span inst)
          (Step_fn.measure_positive (Instance.active_count inst)));
  ]

let suite =
  [
    Alcotest.test_case "item validation" `Quick test_item_validation;
    Alcotest.test_case "item accessors" `Quick test_item_accessors;
    Alcotest.test_case "instance validation" `Quick test_instance_validation;
    Alcotest.test_case "instance renumbers ids" `Quick test_instance_renumbers;
    Alcotest.test_case "figure 1 stats" `Quick test_stats;
    Alcotest.test_case "active sets" `Quick test_active;
    Alcotest.test_case "size regimes" `Quick test_size_regimes;
    Alcotest.test_case "events/restrict" `Quick test_event_times_and_restrict;
    Alcotest.test_case "event ordering" `Quick test_event_ordering;
  ]
  @ prop_tests

(* ---- transforms and the model's exact symmetries ------------------- *)

let transform_props =
  [
    qcheck ~count:80 "time scaling scales every policy's cost"
      (instance_gen ~max_items:20 ()) (fun instance ->
        let factor = r 3 2 in
        let scaled = Instance.scale_time instance ~factor in
        List.for_all2
          (fun (p : Packing.t) (q : Packing.t) ->
            Rat.equal q.Packing.total_cost (Rat.mul factor p.Packing.total_cost))
          (run_all_policies instance) (run_all_policies scaled));
    qcheck ~count:80 "size scaling (with capacity) changes nothing"
      (instance_gen ~max_items:20 ()) (fun instance ->
        let scaled = Instance.scale_sizes instance ~factor:(r 7 3) in
        List.for_all2
          (fun (p : Packing.t) (q : Packing.t) ->
            Rat.equal q.Packing.total_cost p.Packing.total_cost
            && q.Packing.assignment = p.Packing.assignment)
          (run_all_policies instance) (run_all_policies scaled));
    qcheck ~count:80 "time shifting changes nothing but the clock"
      (instance_gen ~max_items:20 ()) (fun instance ->
        let shifted = Instance.shift_time instance ~offset:(ri 100) in
        let p = Simulator.run ~policy:First_fit.policy instance in
        let q = Simulator.run ~policy:First_fit.policy shifted in
        Rat.equal q.Packing.total_cost p.Packing.total_cost
        && q.Packing.assignment = p.Packing.assignment);
    qcheck ~count:40 "OPT_total obeys the time-scaling symmetry"
      (instance_gen ~max_items:10 ()) (fun instance ->
        let factor = Rat.two in
        let a = Dbp_opt.Opt_total.compute instance in
        let b =
          Dbp_opt.Opt_total.compute (Instance.scale_time instance ~factor)
        in
        Rat.equal b.Dbp_opt.Opt_total.lower
          (Rat.mul factor a.Dbp_opt.Opt_total.lower)
        && Rat.equal b.Dbp_opt.Opt_total.upper
             (Rat.mul factor a.Dbp_opt.Opt_total.upper));
  ]

let suite = suite @ transform_props
