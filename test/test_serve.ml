(* The fleet service: shard-pool ordering and failure contracts, the
   router's pool split, bit-identity of a one-shard fleet against the
   batch simulator, exact cost additivity across shards, shard-loss
   degradation under migration budgets, and the socketpair replay
   path end-to-end. *)

open Dbp_num
open Dbp_core
open Dbp_serve
open Test_util

(* ---- shard pool ------------------------------------------------------ *)

let test_pool_fifo_per_shard () =
  let pool =
    Shard_pool.create ~shards:3 ~handler:(fun ~shard req ->
        [ (shard * 1000) + (req * 2) ])
  in
  for i = 0 to 99 do
    Shard_pool.submit pool ~shard:(i mod 3) i
  done;
  let out = Shard_pool.quiesce pool in
  Alcotest.(check int) "one response per request" 100 (List.length out);
  (* Within a shard the mailbox is FIFO, so responses come back in
     submission order even though shards interleave arbitrarily. *)
  for k = 0 to 2 do
    let mine = List.filter_map
        (fun (shard, r) -> if shard = k then Some r else None)
        out
    in
    let expected =
      List.init 100 Fun.id
      |> List.filter (fun i -> i mod 3 = k)
      |> List.map (fun i -> (k * 1000) + (i * 2))
    in
    Alcotest.(check (list int))
      (Printf.sprintf "shard %d FIFO" k)
      expected mine
  done;
  Alcotest.(check (list (pair int int))) "shutdown drains nothing" []
    (Shard_pool.shutdown pool)

let test_pool_batches_survive_idle () =
  (* Responses submitted while the worker sleeps are all processed by
     the next wakeup; poll eventually sees every one. *)
  let pool = Shard_pool.create ~shards:1 ~handler:(fun ~shard:_ r -> [ r ]) in
  for round = 0 to 4 do
    for i = 0 to 19 do
      Shard_pool.submit pool ~shard:0 ((round * 20) + i)
    done;
    ignore (Shard_pool.poll pool)
  done;
  let rest = Shard_pool.quiesce pool in
  ignore (Shard_pool.shutdown pool);
  Alcotest.(check bool) "quiesce flushed the tail" true
    (List.length rest <= 100)

let test_pool_failure_contract () =
  let pool =
    Shard_pool.create ~shards:2 ~handler:(fun ~shard:_ req ->
        if req = 13 then failwith "boom-13";
        [ req ])
  in
  for i = 0 to 30 do
    Shard_pool.submit pool ~shard:(i mod 2) i
  done;
  (match Shard_pool.quiesce pool with
  | _ -> Alcotest.fail "quiesce should re-raise the shard failure"
  | exception Failure msg ->
      Alcotest.(check string) "original exception" "boom-13" msg);
  (match Shard_pool.submit pool ~shard:0 99 with
  | () -> Alcotest.fail "submit should refuse after a failure"
  | exception Shard_pool.Stopped -> ());
  (* Shutdown re-raises the parked failure after joining domains. *)
  match Shard_pool.shutdown pool with
  | _ -> Alcotest.fail "shutdown should re-raise the shard failure"
  | exception Failure msg ->
      Alcotest.(check string) "parked failure" "boom-13" msg

(* ---- router ---------------------------------------------------------- *)

let test_router_pool_split () =
  let router =
    Router.create ~policy:Router.Size_class ~shards:4 ~capacity:Rat.one
      ~k:Rat.two
  in
  let alive _ = true in
  (* Large items (>= 1/2) own shard 0, MFF's dedicated pool. *)
  Alcotest.(check int) "large -> shard 0" 0
    (Router.route router ~alive ~size:(r 1 2) ~item_id:7);
  Alcotest.(check int) "whole bin -> shard 0" 0
    (Router.route router ~alive ~size:Rat.one ~item_id:8);
  (* Small items spread over 1..shards-1 by size class, never shard 0,
     and identically-sized items land together. *)
  List.iter
    (fun (num, den) ->
      let s1 = Router.route router ~alive ~size:(r num den) ~item_id:1 in
      let s2 = Router.route router ~alive ~size:(r num den) ~item_id:999 in
      Alcotest.(check int)
        (Printf.sprintf "size %d/%d is sticky" num den)
        s1 s2;
      Alcotest.(check bool) "small avoids the large pool" true (s1 >= 1))
    [ (1, 3); (1, 4); (1, 7); (2, 5); (1, 100) ];
  (* A dead nominal shard reroutes to a live one. *)
  let nominal = Router.route router ~alive ~size:(r 1 3) ~item_id:1 in
  let rerouted =
    Router.route router
      ~alive:(fun s -> s <> nominal)
      ~size:(r 1 3) ~item_id:1
  in
  Alcotest.(check bool) "reroutes off a dead shard" true (rerouted <> nominal)

(* ---- fleet vs batch simulator --------------------------------------- *)

let fleet_summary ?(shards = 1) ?(budget = Dbp_repack.Budget.unlimited)
    ~policy instance =
  let cfg =
    {
      (Serve.default_config ()) with
      Serve.shards;
      policy;
      policy_name = policy.Policy.name;
      capacity = Instance.capacity instance;
      budget;
    }
  in
  let fleet = Serve.Fleet.create cfg in
  let events = Event.sorted_array_of_instance instance in
  Array.iteri
    (fun i (e : Event.t) ->
      match e.Event.kind with
      | Event.Arrival ->
          Serve.Fleet.arrive fleet ~seq:i ~now:e.Event.time
            ~size:e.Event.item.Item.size ~item:e.Event.item.Item.id
      | Event.Departure ->
          Serve.Fleet.depart fleet ~now:e.Event.time
            ~item:e.Event.item.Item.id)
    events;
  let placements, frozen = Serve.Fleet.snapshot fleet in
  let su = Serve.Fleet.summarize fleet frozen in
  Serve.Fleet.shutdown fleet;
  (placements, su)

let test_one_shard_bit_identical () =
  List.iter
    (fun seed ->
      let instance =
        Dbp_workload.Generator.generate ~seed
          { Dbp_workload.Spec.default with Dbp_workload.Spec.count = 120 }
      in
      List.iter
        (fun (policy : Policy.t) ->
          let batch = Simulator.run ~policy instance in
          let placements, su = fleet_summary ~policy instance in
          Alcotest.(check string)
            (Printf.sprintf "cost string, %s seed %Ld" policy.Policy.name seed)
            (Rat.to_string batch.Packing.total_cost)
            (Rat.to_string su.Serve.su_cost);
          Alcotest.(check int)
            (Printf.sprintf "bins opened, %s seed %Ld" policy.Policy.name seed)
            (Array.length batch.Packing.bins)
            su.Serve.su_bins_opened;
          (* Same engine, same order: the fleet's placements are the
             batch assignment verbatim. *)
          List.iter
            (fun (p : Serve.placement) ->
              Alcotest.(check int)
                (Printf.sprintf "item %d bin" p.Serve.p_item)
                batch.Packing.assignment.(p.Serve.p_item)
                p.Serve.p_bin)
            placements)
        (Algorithms.all ()))
    [ 7L; 42L ]

let prop_one_shard_cost =
  qcheck ~count:40 "one-shard fleet cost bit-identical on random instances"
    (instance_gen ()) (fun instance ->
      List.for_all
        (fun (policy : Policy.t) ->
          let batch = Simulator.run ~policy instance in
          let _, su = fleet_summary ~policy instance in
          String.equal
            (Rat.to_string batch.Packing.total_cost)
            (Rat.to_string su.Serve.su_cost))
        [
          Option.get (Algorithms.find "first-fit");
          Option.get (Algorithms.find "best-fit");
          Option.get (Algorithms.find "mff");
        ])

let prop_shard_costs_sum =
  qcheck ~count:40 "fleet cost is the exact sum of per-shard costs"
    (instance_gen ()) (fun instance ->
      List.for_all
        (fun shards ->
          let _, su =
            fleet_summary ~shards
              ~policy:(Option.get (Algorithms.find "first-fit"))
              instance
          in
          let sum =
            Array.fold_left Rat.add Rat.zero su.Serve.su_shard_costs
          in
          Rat.equal sum su.Serve.su_cost
          && Array.length su.Serve.su_shard_costs = shards)
        [ 2; 3; 5 ])

(* ---- shard loss ------------------------------------------------------ *)

(* Three shards, one resident item on each: a large one on shard 0 and
   two smalls whose size classes land on shards 1 and 2. *)
let seed_three_shards fleet =
  Serve.Fleet.arrive fleet ~seq:0 ~now:Rat.one ~size:(r 3 4) ~item:0;
  Serve.Fleet.arrive fleet ~seq:1 ~now:Rat.one ~size:(r 1 4) ~item:1;
  Serve.Fleet.arrive fleet ~seq:2 ~now:Rat.one ~size:(r 1 3) ~item:2;
  ignore (Serve.Fleet.quiesce fleet)

let test_shard_loss_migrates () =
  let policy = Option.get (Algorithms.find "first-fit") in
  let cfg =
    { (Serve.default_config ()) with Serve.shards = 3; policy }
  in
  let fleet = Serve.Fleet.create cfg in
  seed_three_shards fleet;
  (* Fail both small shards.  Item 1 (size 1/4, class 4) starts on
     shard 1 and is rerouted to shard 2 when shard 1 dies; when shard
     2 dies both smalls move again to shard 0 — three migrations,
     nothing shed under an unlimited budget, and departures still
     resolve by client id. *)
  ignore (Serve.Fleet.fail_shard fleet ~now:Rat.two 1);
  ignore (Serve.Fleet.fail_shard fleet ~now:Rat.two 2);
  let _, frozen = Serve.Fleet.snapshot fleet in
  let su = Serve.Fleet.summarize fleet frozen in
  Alcotest.(check int) "nothing shed" 0 su.Serve.su_shed;
  Alcotest.(check int) "three migrations" 3 su.Serve.su_migrated;
  Alcotest.(check int) "all three still active" 3 su.Serve.su_active;
  Alcotest.(check int) "one live shard left" 1 su.Serve.su_live;
  Serve.Fleet.depart fleet ~now:(Rat.of_int 3) ~item:0;
  Serve.Fleet.depart fleet ~now:(Rat.of_int 3) ~item:1;
  Serve.Fleet.depart fleet ~now:(Rat.of_int 3) ~item:2;
  let _, frozen = Serve.Fleet.snapshot fleet in
  let su = Serve.Fleet.summarize fleet frozen in
  Serve.Fleet.shutdown fleet;
  Alcotest.(check int) "all departed" 0 su.Serve.su_active;
  Alcotest.(check int) "departures counted" 3 su.Serve.su_departures

let test_shard_loss_sheds_on_zero_budget () =
  let policy = Option.get (Algorithms.find "first-fit") in
  let cfg =
    {
      (Serve.default_config ()) with
      Serve.shards = 3;
      policy;
      budget = Dbp_repack.Budget.zero;
    }
  in
  let fleet = Serve.Fleet.create cfg in
  seed_three_shards fleet;
  ignore (Serve.Fleet.fail_shard fleet ~now:Rat.two 1);
  ignore (Serve.Fleet.fail_shard fleet ~now:Rat.two 2);
  let _, frozen = Serve.Fleet.snapshot fleet in
  let su = Serve.Fleet.summarize fleet frozen in
  Alcotest.(check int) "no recourse: nothing migrates" 0 su.Serve.su_migrated;
  Alcotest.(check int) "both smalls shed" 2 su.Serve.su_shed;
  Alcotest.(check int) "only the large survives" 1 su.Serve.su_active;
  (* A departure for a shed session is accepted silently — the client
     cannot know its session died with the shard. *)
  Serve.Fleet.depart fleet ~now:(Rat.of_int 3) ~item:1;
  (* But an unknown item is still a protocol error. *)
  (match Serve.Fleet.depart fleet ~now:(Rat.of_int 3) ~item:77 with
  | () -> Alcotest.fail "unknown depart should raise"
  | exception Serve.Protocol _ -> ());
  Serve.Fleet.shutdown fleet

let test_fail_last_shard_rejected () =
  let fleet = Serve.Fleet.create (Serve.default_config ()) in
  (match Serve.Fleet.fail_shard fleet ~now:Rat.one 0 with
  | _ -> Alcotest.fail "killing the last shard should be rejected"
  | exception Invalid_argument _ -> ());
  Serve.Fleet.shutdown fleet

(* ---- protocol validation --------------------------------------------- *)

let test_protocol_rejections () =
  let fleet = Serve.Fleet.create (Serve.default_config ()) in
  Serve.Fleet.arrive fleet ~seq:0 ~now:Rat.one ~size:(r 1 2) ~item:5;
  (match Serve.Fleet.arrive fleet ~seq:1 ~now:Rat.one ~size:(r 1 2) ~item:5 with
  | () -> Alcotest.fail "duplicate arrival should raise"
  | exception Serve.Protocol _ -> ());
  (match
     Serve.Fleet.arrive fleet ~seq:2 ~now:(r 1 2) ~size:(r 1 2) ~item:6
   with
  | () -> Alcotest.fail "time regression should raise"
  | exception Serve.Protocol _ -> ());
  (match Serve.Fleet.arrive fleet ~seq:3 ~now:Rat.two ~size:Rat.two ~item:7 with
  | () -> Alcotest.fail "oversized item should raise"
  | exception Serve.Protocol _ -> ());
  Serve.Fleet.shutdown fleet

(* ---- replay end-to-end ----------------------------------------------- *)

let test_replay_socketpair_end_to_end () =
  let instance =
    Dbp_workload.Generator.generate ~seed:23L
      { Dbp_workload.Spec.default with Dbp_workload.Spec.count = 60 }
  in
  let policy = Option.get (Algorithms.find "first-fit") in
  let cfg = { (Serve.default_config ()) with Serve.policy } in
  let batch = Simulator.run ~policy instance in
  let lines = ref 0 in
  match Serve.replay cfg ~echo:(fun _ -> incr lines) instance with
  | Error msg -> Alcotest.failf "replay failed: %s" msg
  | Ok summary ->
      Alcotest.(check bool) "summary line" true
        (contains ~sub:{|"kind":"summary"|} summary);
      Alcotest.(check bool) "cost bit-identical over the wire" true
        (contains
           ~sub:
             (Printf.sprintf {|"cost":"%s"|}
                (Rat.to_string batch.Packing.total_cost))
           summary);
      Alcotest.(check int) "every arrival answered"
        (Instance.size instance) !lines

let suite =
  [
    Alcotest.test_case "shard pool FIFO per shard" `Quick
      test_pool_fifo_per_shard;
    Alcotest.test_case "shard pool batch drain" `Quick
      test_pool_batches_survive_idle;
    Alcotest.test_case "shard pool failure contract" `Quick
      test_pool_failure_contract;
    Alcotest.test_case "router pool split" `Quick test_router_pool_split;
    Alcotest.test_case "one shard bit-identical" `Quick
      test_one_shard_bit_identical;
    Alcotest.test_case "shard loss migrates within budget" `Quick
      test_shard_loss_migrates;
    Alcotest.test_case "shard loss sheds on zero budget" `Quick
      test_shard_loss_sheds_on_zero_budget;
    Alcotest.test_case "last shard cannot fail" `Quick
      test_fail_last_shard_rejected;
    Alcotest.test_case "protocol rejections" `Quick test_protocol_rejections;
    Alcotest.test_case "replay socketpair end-to-end" `Quick
      test_replay_socketpair_end_to_end;
    prop_one_shard_cost;
    prop_shard_costs_sum;
  ]
