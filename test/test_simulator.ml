open Dbp_num
open Dbp_core
open Test_util

let mk ?(size = r 1 2) a d =
  Item.make ~id:0 ~size ~arrival:(ri a) ~departure:(ri d)

let inst items = Instance.create ~capacity:Rat.one items

let test_single_item () =
  let packing = Simulator.run ~policy:First_fit.policy (inst [ mk 0 3 ]) in
  assert_valid_packing packing;
  Alcotest.(check int) "one bin" 1 (Packing.bins_used packing);
  check_rat "cost = duration" (ri 3) packing.Packing.total_cost;
  Alcotest.(check int) "max bins" 1 packing.Packing.max_bins;
  Alcotest.(check bool) "any fit" true (Packing.is_any_fit packing)

let test_two_fit_together () =
  let packing = Simulator.run ~policy:First_fit.policy (inst [ mk 0 3; mk 1 2 ]) in
  assert_valid_packing packing;
  Alcotest.(check int) "one bin" 1 (Packing.bins_used packing);
  check_rat "cost" (ri 3) packing.Packing.total_cost

let test_overflow_opens_second () =
  let packing =
    Simulator.run ~policy:First_fit.policy
      (inst [ mk ~size:(r 3 5) 0 2; mk ~size:(r 3 5) 0 2 ])
  in
  assert_valid_packing packing;
  Alcotest.(check int) "two bins" 2 (Packing.bins_used packing);
  check_rat "cost" (ri 4) packing.Packing.total_cost

let test_bin_reopens_cost () =
  (* Two items with a gap: second arrival at t=3 after first left at 2.
     The first bin closed, so a second bin opens; both cost their own
     durations. *)
  let packing = Simulator.run ~policy:First_fit.policy (inst [ mk 0 2; mk 3 5 ]) in
  assert_valid_packing packing;
  Alcotest.(check int) "two bins" 2 (Packing.bins_used packing);
  check_rat "cost skips gap" (ri 4) packing.Packing.total_cost;
  Alcotest.(check int) "never concurrent" 1 packing.Packing.max_bins

let test_departure_then_arrival_same_time () =
  (* Item 1 departs exactly when item 2 arrives: the bin closed at 2, so
     a new bin must open even though levels would have allowed reuse. *)
  let packing = Simulator.run ~policy:First_fit.policy (inst [ mk 0 2; mk 2 4 ]) in
  assert_valid_packing packing;
  Alcotest.(check int) "two bins" 2 (Packing.bins_used packing);
  check_rat "cost" (ri 4) packing.Packing.total_cost

let test_assignment_and_records () =
  let packing =
    Simulator.run ~policy:First_fit.policy
      (inst [ mk ~size:(r 2 3) 0 4; mk ~size:(r 2 3) 1 2; mk ~size:(r 1 3) 1 3 ])
  in
  assert_valid_packing packing;
  Alcotest.(check int) "bins" 2 (Packing.bins_used packing);
  (* item 2 (size 1/3) fits into bin 0 beside item 0 *)
  Alcotest.(check int) "item0 -> bin0" 0 packing.Packing.assignment.(0);
  Alcotest.(check int) "item1 -> bin1" 1 packing.Packing.assignment.(1);
  Alcotest.(check int) "item2 -> bin0" 0 packing.Packing.assignment.(2);
  let b0 = packing.Packing.bins.(0) in
  Alcotest.(check (list int)) "bin0 items" [ 0; 2 ] b0.Packing.item_ids;
  check_rat "bin0 max level" Rat.one b0.Packing.max_level;
  Alcotest.(check int) "placements recorded" 2 (List.length b0.Packing.placements)

let test_online_protocol_errors () =
  let o =
    Simulator.Online.create ~policy:First_fit.policy ~capacity:Rat.one ()
  in
  ignore (Simulator.Online.arrive o ~now:Rat.one ~size:(r 1 2) ~item_id:0);
  Alcotest.(check bool) "time backwards" true
    (try
       ignore (Simulator.Online.arrive o ~now:Rat.zero ~size:(r 1 2) ~item_id:1);
       false
     with Simulator.Invalid_step _ -> true);
  Alcotest.(check bool) "id reuse" true
    (try
       ignore (Simulator.Online.arrive o ~now:Rat.two ~size:(r 1 2) ~item_id:0);
       false
     with Simulator.Invalid_step _ -> true);
  Alcotest.(check bool) "unknown departure" true
    (try
       Simulator.Online.depart o ~now:Rat.two ~item_id:99;
       false
     with Simulator.Invalid_step _ -> true);
  Alcotest.(check bool) "oversized item" true
    (try
       ignore (Simulator.Online.arrive o ~now:Rat.two ~size:(ri 2) ~item_id:2);
       false
     with Simulator.Invalid_decision _ -> true);
  Alcotest.(check bool) "finish with active items" true
    (try
       ignore
         (Simulator.Online.finish o
            ~instance:(inst [ mk 0 1 ]));
       false
     with Simulator.Invalid_step _ -> true)

let raises_invalid_step name f =
  Alcotest.(check bool) name true
    (try
       ignore (f ());
       false
     with Simulator.Invalid_step _ -> true)

let test_fail_bin_protocol () =
  let o =
    Simulator.Online.create ~policy:First_fit.policy ~capacity:Rat.one ()
  in
  let b0 = Simulator.Online.arrive o ~now:Rat.zero ~size:(r 1 2) ~item_id:0 in
  let b0' = Simulator.Online.arrive o ~now:Rat.zero ~size:(r 1 2) ~item_id:1 in
  Alcotest.(check int) "FF stacks both in one bin" b0 b0';
  raises_invalid_step "failing an unknown bin" (fun () ->
      Simulator.Online.fail_bin o ~now:Rat.one ~bin_id:99);
  let evicted = Simulator.Online.fail_bin o ~now:Rat.two ~bin_id:b0 in
  Alcotest.(check (list (pair int rat)))
    "evicted pairs in placement order"
    [ (0, r 1 2); (1, r 1 2) ]
    evicted;
  Alcotest.(check int) "no open bins after failure" 0
    (List.length (Simulator.Online.open_bins o));
  raises_invalid_step "failing an already-failed bin" (fun () ->
      Simulator.Online.fail_bin o ~now:Rat.two ~bin_id:b0);
  raises_invalid_step "departing an evicted item" (fun () ->
      Simulator.Online.depart o ~now:(ri 3) ~item_id:0);
  raises_invalid_step "evicted ids stay used" (fun () ->
      Simulator.Online.arrive o ~now:(ri 3) ~size:(r 1 2) ~item_id:1);
  (* The simulator keeps stepping after a failure. *)
  let b1 = Simulator.Online.arrive o ~now:(ri 3) ~size:(r 1 2) ~item_id:2 in
  Alcotest.(check bool) "new bin after failure" true (b1 <> b0);
  raises_invalid_step "fail_bin cannot move time backwards" (fun () ->
      Simulator.Online.fail_bin o ~now:Rat.one ~bin_id:b1);
  Simulator.Online.depart o ~now:(ri 5) ~item_id:2

let test_fail_bin_accounting () =
  (* Two half-size sessions share one FF bin over [0,4]; the bin fails
     at t=2, so it pays exactly [0,2].  A replacement session then runs
     in a second bin over [2,5].  Total = 2 + 3. *)
  let o =
    Simulator.Online.create ~policy:First_fit.policy ~capacity:Rat.one ()
  in
  let b0 = Simulator.Online.arrive o ~now:Rat.zero ~size:(r 1 2) ~item_id:0 in
  ignore (Simulator.Online.arrive o ~now:Rat.zero ~size:(r 1 2) ~item_id:1);
  let evicted = Simulator.Online.fail_bin o ~now:Rat.two ~bin_id:b0 in
  Alcotest.(check int) "both sessions evicted" 2 (List.length evicted);
  ignore (Simulator.Online.arrive o ~now:Rat.two ~size:(r 1 2) ~item_id:2);
  Simulator.Online.depart o ~now:(ri 5) ~item_id:2;
  let effective =
    Instance.create ~capacity:Rat.one
      [
        Item.make ~id:0 ~size:(r 1 2) ~arrival:Rat.zero ~departure:Rat.two;
        Item.make ~id:1 ~size:(r 1 2) ~arrival:Rat.zero ~departure:Rat.two;
        Item.make ~id:2 ~size:(r 1 2) ~arrival:Rat.two ~departure:(ri 5);
      ]
  in
  let packing = Simulator.Online.finish o ~instance:effective in
  assert_valid_packing packing;
  Alcotest.(check int) "two bins" 2 (Packing.bins_used packing);
  check_rat "failed bin pays its open interval only" (ri 5)
    packing.Packing.total_cost

let test_invalid_policy_decision () =
  let bad_existing =
    Policy.stateless ~name:"bad-existing" (fun ~capacity:_ ~now:_ ~bins:_ ~size:_ ->
        Policy.Existing 42)
  in
  Alcotest.(check bool) "unknown bin rejected" true
    (try
       ignore (Simulator.run ~policy:bad_existing (inst [ mk 0 1 ]));
       false
     with Simulator.Invalid_decision _ -> true);
  let overfill =
    Policy.stateless ~name:"overfill" (fun ~capacity:_ ~now:_ ~bins ~size:_ ->
        match bins with
        | [] -> Policy.New_bin "x"
        | (v : Bin.view) :: _ -> Policy.Existing v.bin_id)
  in
  Alcotest.(check bool) "overfull bin rejected" true
    (try
       ignore
         (Simulator.run ~policy:overfill
            (inst [ mk ~size:(r 3 5) 0 2; mk ~size:(r 3 5) 0 2 ]));
       false
     with Simulator.Invalid_decision _ -> true)

let test_online_observability () =
  let o = Simulator.Online.create ~policy:First_fit.policy ~capacity:Rat.one () in
  let b0 = Simulator.Online.arrive o ~now:Rat.zero ~size:(r 1 2) ~item_id:0 in
  let b1 = Simulator.Online.arrive o ~now:Rat.zero ~size:(r 2 3) ~item_id:1 in
  Alcotest.(check bool) "distinct bins" true (b0 <> b1);
  Alcotest.(check int) "two open" 2
    (List.length (Simulator.Online.open_bins o));
  Alcotest.(check (option int)) "item 1 in b1" (Some b1)
    (Simulator.Online.bin_of_item o 1);
  (match Simulator.Online.level_of o b0 with
  | Some l -> check_rat "level of b0" (r 1 2) l
  | None -> Alcotest.fail "b0 should be open");
  Simulator.Online.depart o ~now:Rat.one ~item_id:0;
  Alcotest.(check int) "one open after close" 1
    (List.length (Simulator.Online.open_bins o));
  Alcotest.(check bool) "b0 closed" true
    (Simulator.Online.level_of o b0 = None);
  Alcotest.(check (option int)) "item 0 gone" None
    (Simulator.Online.bin_of_item o 0)

let test_timeline_matches_cost () =
  let instance =
    inst [ mk 0 4; mk ~size:(r 2 3) 1 3; mk 2 6; mk ~size:(r 2 3) 5 7 ]
  in
  List.iter
    (fun packing ->
      assert_valid_packing packing;
      check_rat
        ("timeline integral for " ^ packing.Packing.policy_name)
        packing.Packing.total_cost
        (Step_fn.integral packing.Packing.timeline))
    (run_all_policies instance)

let prop_tests =
  [
    qcheck ~count:250 "all policies produce valid packings" (instance_gen ())
      (fun instance ->
        List.for_all
          (fun packing -> Packing.validate packing = Ok ())
          (run_all_policies instance));
    qcheck ~count:120 "cost within paper bounds (b.2)-(b.3)" (instance_gen ())
      (fun instance ->
        let span = Instance.span instance in
        let naive =
          Rat.sum
            (List.map Item.length (Array.to_list (Instance.items instance)))
        in
        List.for_all
          (fun (p : Packing.t) ->
            Rat.(p.total_cost >= span) && Rat.(p.total_cost <= naive))
          (run_all_policies instance));
    qcheck ~count:120 "deterministic policies replay identically"
      (instance_gen ()) (fun instance ->
        let once = Simulator.run ~policy:Best_fit.policy instance in
        let twice = Simulator.run ~policy:Best_fit.policy instance in
        Rat.equal once.Packing.total_cost twice.Packing.total_cost
        && once.Packing.assignment = twice.Packing.assignment);
    qcheck ~count:120 "any-fit family reports no violations" (instance_gen ())
      (fun instance ->
        List.for_all
          (fun policy ->
            (Simulator.run ~policy instance).Packing.any_fit_violations = 0)
          (Algorithms.any_fit_family ()));
    qcheck ~count:120 "fail_bin mid-run keeps the online state consistent"
      (instance_gen ()) (fun instance ->
        let items = Instance.items instance in
        let events =
          Array.to_list items
          |> List.concat_map (fun (i : Item.t) ->
                 [ (i.arrival, 1, i.id); (i.departure, 0, i.id) ])
          |> List.sort (fun (t1, k1, i1) (t2, k2, i2) ->
                 let c = Rat.compare t1 t2 in
                 if c <> 0 then c
                 else
                   let c = compare k1 k2 in
                   if c <> 0 then c else compare i1 i2)
        in
        let o =
          Simulator.Online.create ~policy:First_fit.policy ~capacity:Rat.one ()
        in
        let n = List.length events in
        let evicted = Hashtbl.create 8 in
        let failed_once = ref false in
        List.iteri
          (fun k (t, kind, id) ->
            (* Strike once, halfway through the event stream: the
               documented invalid steps around a failure must all
               raise, and the survivors must keep stepping. *)
            (if (not !failed_once) && 2 * k >= n then
               match Simulator.Online.open_bins o with
               | [] -> ()
               | (b : Bin.view) :: _ ->
                   let b = b.Bin.bin_id in
                   failed_once := true;
                   (match Simulator.Online.fail_bin o ~now:t ~bin_id:(-1) with
                   | _ -> Alcotest.fail "unknown bin accepted"
                   | exception Simulator.Invalid_step _ -> ());
                   List.iter
                     (fun (vid, _) -> Hashtbl.replace evicted vid ())
                     (Simulator.Online.fail_bin o ~now:t ~bin_id:b);
                   (match Simulator.Online.fail_bin o ~now:t ~bin_id:b with
                   | _ -> Alcotest.fail "double fail accepted"
                   | exception Simulator.Invalid_step _ -> ()));
            if kind = 1 then
              ignore
                (Simulator.Online.arrive o ~now:t ~size:items.(id).Item.size
                   ~item_id:id)
            else if Hashtbl.mem evicted id then (
              match Simulator.Online.depart o ~now:t ~item_id:id with
              | () -> Alcotest.fail "departing an evicted item accepted"
              | exception Simulator.Invalid_step _ -> ())
            else Simulator.Online.depart o ~now:t ~item_id:id)
          events;
        Simulator.Online.open_bins o = []);
    qcheck ~count:120 "max_bins at least peak demand ceiling" (instance_gen ())
      (fun instance ->
        (* at the busiest instant, active volume / capacity bins are
           needed by anyone *)
        let needed =
          Instance.event_times instance
          |> List.map (fun t ->
                 Instance.active_at instance t
                 |> List.map (fun (i : Item.t) -> i.size)
                 |> Rat.sum)
          |> List.map (fun v -> Rat.ceil v)
          |> List.fold_left max 0
        in
        List.for_all
          (fun (p : Packing.t) -> p.Packing.max_bins >= needed)
          (run_all_policies instance));
  ]

let suite =
  [
    Alcotest.test_case "single item" `Quick test_single_item;
    Alcotest.test_case "two fit together" `Quick test_two_fit_together;
    Alcotest.test_case "overflow opens second" `Quick test_overflow_opens_second;
    Alcotest.test_case "gap closes bin" `Quick test_bin_reopens_cost;
    Alcotest.test_case "tie: departure before arrival" `Quick
      test_departure_then_arrival_same_time;
    Alcotest.test_case "assignments and records" `Quick
      test_assignment_and_records;
    Alcotest.test_case "online protocol errors" `Quick
      test_online_protocol_errors;
    Alcotest.test_case "fail_bin protocol" `Quick test_fail_bin_protocol;
    Alcotest.test_case "fail_bin accounting" `Quick test_fail_bin_accounting;
    Alcotest.test_case "invalid policy decisions" `Quick
      test_invalid_policy_decision;
    Alcotest.test_case "online observability" `Quick test_online_observability;
    Alcotest.test_case "timeline matches cost" `Quick test_timeline_matches_cost;
  ]
  @ prop_tests

(* Scale smoke: the simulator and the cheap bounds stay fast and
   correct on a 5000-item trace. *)
let test_scale_5000 () =
  let spec =
    { Dbp_workload.Spec.default with Dbp_workload.Spec.count = 5_000 }
  in
  let instance = Dbp_workload.Generator.generate ~seed:77L spec in
  let t0 = Unix.gettimeofday () in
  let packing = Simulator.run ~policy:First_fit.policy instance in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "finished in reasonable time" true (elapsed < 30.0);
  assert_valid_packing packing;
  Alcotest.(check bool) "cost within bounds" true
    (let lb = Dbp_opt.Bounds.opt_lower_bound instance in
     Rat.(packing.Packing.total_cost >= lb))

let suite =
  suite @ [ Alcotest.test_case "5000-item scale" `Slow test_scale_5000 ]
