open Dbp_num
open Dbp_core
open Dbp_workload
open Test_util

let test_generator_determinism () =
  let a = Generator.generate ~seed:1L Spec.default in
  let b = Generator.generate ~seed:1L Spec.default in
  let c = Generator.generate ~seed:2L Spec.default in
  Alcotest.(check bool) "same seed same items" true
    (Array.for_all2 Item.equal (Instance.items a) (Instance.items b));
  Alcotest.(check bool) "different seed differs" true
    (not (Array.for_all2 Item.equal (Instance.items a) (Instance.items c)))

let test_generator_respects_clamps () =
  let spec = Spec.with_target_mu Spec.default ~mu:4.0 in
  let instance = Generator.generate ~seed:3L spec in
  Alcotest.(check int) "count" spec.Spec.count (Instance.size instance);
  Alcotest.(check bool) "mu within target" true
    Rat.(Instance.mu instance <= Rat.of_float 4.0);
  Alcotest.(check bool) "durations at least min" true
    Rat.(Instance.min_interval_length instance >= Rat.of_float 1.0)

let test_small_items_regime () =
  let spec = Spec.small_items Spec.default ~k:4 in
  let instance = Generator.generate ~seed:4L spec in
  Alcotest.(check bool) "strictly below W/4" true
    (Instance.sizes_below instance (r 1 4))

let test_large_items_regime () =
  let spec = Spec.large_items Spec.default ~k:4 in
  let instance = Generator.generate ~seed:5L spec in
  Alcotest.(check bool) "at least W/4" true
    (Instance.sizes_at_least instance (r 1 4))

let test_generate_many_independent () =
  let runs = Generator.generate_many ~seed:6L Spec.default ~runs:3 in
  Alcotest.(check int) "three runs" 3 (List.length runs);
  match runs with
  | [ a; b; _ ] ->
      Alcotest.(check bool) "runs differ" true
        (not (Array.for_all2 Item.equal (Instance.items a) (Instance.items b)))
  | _ -> Alcotest.fail "unexpected shape"

let test_arrival_models () =
  let batched =
    { Spec.default with Spec.arrivals = Spec.Batched { batches = 4; gap = 5.0 };
      count = 40 }
  in
  let instance = Generator.generate ~seed:7L batched in
  let distinct_arrivals =
    Instance.items instance |> Array.to_list
    |> List.map (fun (i : Item.t) -> i.arrival)
    |> List.sort_uniq Rat.compare
  in
  Alcotest.(check int) "four arrival instants" 4 (List.length distinct_arrivals);
  let uniform =
    { Spec.default with Spec.arrivals = Spec.Uniform_over { horizon = 10.0 } }
  in
  let u = Generator.generate ~seed:8L uniform in
  Alcotest.(check bool) "arrivals within horizon" true
    (Array.for_all
       (fun (i : Item.t) -> Rat.(i.arrival <= Rat.of_float 10.0))
       (Instance.items u))

let test_spec_validation () =
  Alcotest.(check bool) "count 0" true
    (try
       ignore (Generator.generate { Spec.default with Spec.count = 0 });
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad clamps" true
    (try
       ignore
         (Generator.generate { Spec.default with Spec.max_duration = 0.1 });
       false
     with Invalid_argument _ -> true)

let test_trace_round_trip () =
  let instance = Generator.generate ~seed:9L { Spec.default with Spec.count = 25 } in
  let text = Trace.to_string instance in
  let back = Trace.of_string text in
  Alcotest.(check bool) "items round-trip" true
    (Array.for_all2 Item.equal (Instance.items instance) (Instance.items back));
  check_rat "capacity round-trips" (Instance.capacity instance)
    (Instance.capacity back)

let test_trace_file_round_trip () =
  let instance = Patterns.fragmentation ~k:3 ~mu:(ri 4) in
  let path = Filename.temp_file "dbp_trace" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save instance ~path;
      let back = Trace.load ~path in
      Alcotest.(check int) "size" (Instance.size instance) (Instance.size back))

(* Every malformed trace must surface as a structured [Parse_error]
   carrying the 1-based line and offending field, never a bare
   [Failure] (which the CLI would render as a backtrace). *)
let parse_error_of text =
  match Trace.of_string text with
  | _ -> Alcotest.failf "parse unexpectedly succeeded on %S" text
  | exception Trace.Parse_error e -> e

let test_trace_errors () =
  let e = parse_error_of "id,size,arrival,departure\n0,1/2,0,1\n" in
  Alcotest.(check int) "missing header: line" 1 e.Trace.line;
  Alcotest.(check bool) "missing header: message mentions capacity" true
    (contains ~sub:"capacity" e.Trace.message);
  let e = parse_error_of "# capacity=1\nid,size,arrival,departure\nxx\n" in
  Alcotest.(check int) "malformed row: line" 3 e.Trace.line;
  let e = parse_error_of "# capacity=zero\nid,size,arrival,departure\n" in
  Alcotest.(check (option string)) "bad capacity: field" (Some "capacity")
    e.Trace.field;
  let e = parse_error_of "# capacity=1\n0,1/2,0,1\n" in
  Alcotest.(check int) "missing column header: line" 2 e.Trace.line;
  Alcotest.(check bool) "missing column header: message" true
    (contains ~sub:"column header" e.Trace.message)

let test_trace_field_errors () =
  (* Blank lines are skipped but must not shift reported line numbers. *)
  let e =
    parse_error_of "# capacity=1\n\nid,size,arrival,departure\n\n0,1/2,0,oops\n"
  in
  Alcotest.(check int) "non-rational departure: line" 5 e.Trace.line;
  Alcotest.(check (option string)) "non-rational departure: field"
    (Some "departure") e.Trace.field;
  let e =
    parse_error_of "# capacity=1\nid,size,arrival,departure\n0,1/2,3,2\n"
  in
  Alcotest.(check (option string)) "departure before arrival: field"
    (Some "departure") e.Trace.field;
  Alcotest.(check int) "departure before arrival: line" 3 e.Trace.line;
  let e =
    parse_error_of "# capacity=1\nid,size,arrival,departure\n0,3/2,0,1\n"
  in
  Alcotest.(check (option string)) "oversized item: field" (Some "size")
    e.Trace.field;
  let e =
    parse_error_of "# capacity=1\nid,size,arrival,departure\n0,1/2,0\n"
  in
  Alcotest.(check bool) "wrong field count: message" true
    (contains ~sub:"4 comma-separated fields" e.Trace.message);
  let e = parse_error_of "# capacity=1\nid,size,arrival,departure\n" in
  Alcotest.(check bool) "no data rows: message" true
    (contains ~sub:"no item rows" e.Trace.message);
  (* The rendered form carries line and field for CLI diagnostics. *)
  let e =
    parse_error_of "# capacity=1\nid,size,arrival,departure\n0,nope,0,1\n"
  in
  let rendered = Trace.parse_error_to_string e in
  Alcotest.(check bool) "rendered error names the line" true
    (contains ~sub:"line 3" rendered);
  Alcotest.(check bool) "rendered error names the field" true
    (contains ~sub:"'size'" rendered)

(* The id column is parsed and preserved: rows may arrive shuffled, as
   long as the ids form a permutation of 0..n-1. *)
let test_trace_ids_preserved () =
  let shuffled =
    "# capacity=1\n\
     id,size,arrival,departure\n\
     2,1/4,2,5\n\
     0,1/2,0,2\n\
     1,1/3,1,3\n"
  in
  let instance = Trace.of_string shuffled in
  Alcotest.(check int) "three items" 3 (Instance.size instance);
  let item i = Instance.item instance i in
  check_rat "id 0 keeps its size" (r 1 2) (item 0).Item.size;
  check_rat "id 1 keeps its arrival" Rat.one (item 1).Item.arrival;
  check_rat "id 2 keeps its departure" (ri 5) (item 2).Item.departure;
  (* shuffling rows changes nothing: same instance as the sorted text *)
  let sorted =
    "# capacity=1\n\
     id,size,arrival,departure\n\
     0,1/2,0,2\n\
     1,1/3,1,3\n\
     2,1/4,2,5\n"
  in
  Alcotest.(check bool) "row order is irrelevant" true
    (Array.for_all2 Item.equal (Instance.items instance)
       (Instance.items (Trace.of_string sorted)))

let test_trace_id_errors () =
  let e =
    parse_error_of
      "# capacity=1\nid,size,arrival,departure\n0,1/2,0,1\n0,1/3,0,1\n"
  in
  Alcotest.(check (option string)) "duplicate id: field" (Some "id")
    e.Trace.field;
  Alcotest.(check int) "duplicate id: reported at the second use" 4
    e.Trace.line;
  Alcotest.(check bool) "duplicate id: names the first line" true
    (contains ~sub:"line 3" e.Trace.message);
  let e =
    parse_error_of "# capacity=1\nid,size,arrival,departure\n5,1/2,0,1\n"
  in
  Alcotest.(check (option string)) "out-of-range id: field" (Some "id")
    e.Trace.field;
  Alcotest.(check bool) "out-of-range id: message mentions permutation" true
    (contains ~sub:"permutation" e.Trace.message);
  let e =
    parse_error_of "# capacity=1\nid,size,arrival,departure\n-1,1/2,0,1\n"
  in
  Alcotest.(check bool) "negative id rejected" true
    (contains ~sub:"negative" e.Trace.message);
  let e =
    parse_error_of "# capacity=1\nid,size,arrival,departure\nx,1/2,0,1\n"
  in
  Alcotest.(check (option string)) "non-integer id: field" (Some "id")
    e.Trace.field;
  (* the column header must match exactly, not just start with 'i' *)
  let e = parse_error_of "# capacity=1\nignored,junk\n0,1/2,0,1\n" in
  Alcotest.(check int) "wrong column header: line" 2 e.Trace.line;
  Alcotest.(check bool) "wrong column header: message" true
    (contains ~sub:"id,size,arrival,departure" e.Trace.message)

let test_patterns () =
  let frag = Patterns.fragmentation ~k:3 ~mu:(ri 2) in
  Alcotest.(check int) "fragmentation items" 9 (Instance.size frag);
  check_rat "fragmentation mu" (ri 2) (Instance.mu frag);
  let stair = Patterns.staircase ~steps:5 ~step_length:Rat.one in
  Alcotest.(check int) "staircase items" 5 (Instance.size stair);
  let packing = Simulator.run ~policy:First_fit.policy stair in
  Alcotest.(check int) "staircase window of 2" 2 packing.Packing.max_bins;
  (* every algorithm is optimal on the staircase *)
  let opt = Dbp_opt.Opt_total.compute stair in
  check_rat "staircase ratio 1" packing.Packing.total_cost
    (Dbp_opt.Opt_total.value_exn opt);
  let saw = Patterns.sawtooth ~teeth:3 ~per_tooth:4 ~mu:(ri 3) in
  Alcotest.(check int) "sawtooth items" 12 (Instance.size saw);
  let pc = Patterns.pairwise_conflict ~pairs:3 in
  let pc_ff = Simulator.run ~policy:First_fit.policy pc in
  Alcotest.(check int) "pairwise conflicts need 2 bins" 2
    pc_ff.Packing.max_bins;
  let spike = Patterns.spike ~base:6 ~spike_height:4 in
  Alcotest.(check int) "spike items" 10 (Instance.size spike)

let spec_gen =
  QCheck2.Gen.(
    map3
      (fun count mu seed ->
        ( { (Spec.with_target_mu Spec.default ~mu:(float_of_int mu)) with
            Spec.count },
          Int64.of_int seed ))
      (int_range 1 60) (int_range 1 12) (int_range 0 10_000))

let prop_tests =
  [
    qcheck ~count:80 "generated instances satisfy their spec" spec_gen
      (fun (spec, seed) ->
        let instance = Generator.generate ~seed spec in
        Instance.size instance = spec.Spec.count
        && Rat.(Instance.max_size instance <= spec.Spec.capacity)
        && Rat.(
             Instance.min_interval_length instance
             >= Rat.of_float spec.Spec.min_duration)
        && Rat.(
             Instance.max_interval_length instance
             <= Rat.of_float spec.Spec.max_duration));
    qcheck ~count:80 "trace round-trips for generated instances" spec_gen
      (fun (spec, seed) ->
        let instance = Generator.generate ~seed spec in
        let back = Trace.of_string (Trace.to_string instance) in
        Array.for_all2 Item.equal (Instance.items instance)
          (Instance.items back));
    qcheck ~count:80 "reversed trace rows load identically" spec_gen
      (fun (spec, seed) ->
        (* ids are preserved, so any row permutation — reversal is one —
           must reproduce the same instance, item for item *)
        let instance = Generator.generate ~seed spec in
        match String.split_on_char '\n' (Trace.to_string instance) with
        | cap :: header :: rows ->
            let rows = List.filter (fun l -> l <> "") rows in
            let shuffled =
              String.concat "\n" (cap :: header :: List.rev rows) ^ "\n"
            in
            let back = Trace.of_string shuffled in
            Array.for_all2 Item.equal (Instance.items instance)
              (Instance.items back)
        | _ -> false);
  ]

let suite =
  [
    Alcotest.test_case "generator determinism" `Quick test_generator_determinism;
    Alcotest.test_case "clamps respected" `Quick test_generator_respects_clamps;
    Alcotest.test_case "small-items regime" `Quick test_small_items_regime;
    Alcotest.test_case "large-items regime" `Quick test_large_items_regime;
    Alcotest.test_case "generate_many" `Quick test_generate_many_independent;
    Alcotest.test_case "arrival models" `Quick test_arrival_models;
    Alcotest.test_case "spec validation" `Quick test_spec_validation;
    Alcotest.test_case "trace round trip" `Quick test_trace_round_trip;
    Alcotest.test_case "trace file round trip" `Quick test_trace_file_round_trip;
    Alcotest.test_case "trace errors" `Quick test_trace_errors;
    Alcotest.test_case "trace field errors" `Quick test_trace_field_errors;
    Alcotest.test_case "trace ids preserved" `Quick test_trace_ids_preserved;
    Alcotest.test_case "trace id errors" `Quick test_trace_id_errors;
    Alcotest.test_case "patterns" `Quick test_patterns;
  ]
  @ prop_tests

let test_fragmentation_fine () =
  let instance = Patterns.fragmentation_fine ~bins:4 ~per_bin:8 ~mu:(ri 6) in
  Alcotest.(check int) "items" 32 (Instance.size instance);
  Alcotest.(check bool) "sizes strictly below W/4" true
    (Instance.sizes_below instance (r 1 4));
  check_rat "mu" (ri 6) (Instance.mu instance);
  let ff = Simulator.run ~policy:First_fit.policy instance in
  Alcotest.(check int) "FF fills 4 bins" 4 (Packing.bins_used ff);
  check_rat "FF pays bins*mu" (ri 24) ff.Packing.total_cost;
  (* forced ratio = bins*mu/(bins+mu-1) exactly *)
  let ratio = Dbp_analysis.Ratio.measure ff in
  check_rat "forced ratio" (r 24 9) (Dbp_analysis.Ratio.value_exn ratio);
  Alcotest.(check bool) "param validation" true
    (try
       ignore (Patterns.fragmentation_fine ~bins:0 ~per_bin:1 ~mu:Rat.one);
       false
     with Invalid_argument _ -> true)

let suite =
  suite
  @ [ Alcotest.test_case "fragmentation fine" `Quick test_fragmentation_fine ]
