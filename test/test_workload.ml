open Dbp_num
open Dbp_core
open Dbp_workload
open Test_util

let test_generator_determinism () =
  let a = Generator.generate ~seed:1L Spec.default in
  let b = Generator.generate ~seed:1L Spec.default in
  let c = Generator.generate ~seed:2L Spec.default in
  Alcotest.(check bool) "same seed same items" true
    (Array.for_all2 Item.equal (Instance.items a) (Instance.items b));
  Alcotest.(check bool) "different seed differs" true
    (not (Array.for_all2 Item.equal (Instance.items a) (Instance.items c)))

let test_generator_respects_clamps () =
  let spec = Spec.with_target_mu Spec.default ~mu:4.0 in
  let instance = Generator.generate ~seed:3L spec in
  Alcotest.(check int) "count" spec.Spec.count (Instance.size instance);
  Alcotest.(check bool) "mu within target" true
    Rat.(Instance.mu instance <= Rat.of_float 4.0);
  Alcotest.(check bool) "durations at least min" true
    Rat.(Instance.min_interval_length instance >= Rat.of_float 1.0)

let test_small_items_regime () =
  let spec = Spec.small_items Spec.default ~k:4 in
  let instance = Generator.generate ~seed:4L spec in
  Alcotest.(check bool) "strictly below W/4" true
    (Instance.sizes_below instance (r 1 4))

let test_large_items_regime () =
  let spec = Spec.large_items Spec.default ~k:4 in
  let instance = Generator.generate ~seed:5L spec in
  Alcotest.(check bool) "at least W/4" true
    (Instance.sizes_at_least instance (r 1 4))

(* Regression: when k does not divide capacity * quantum (k = 3 on a
   1/10 grid here) the class boundary W/k is not a grid point, and the
   old float bounds [to_float capacity /. float k] let snapped draws
   land on the grid point just below it — items of size 3/10 < 1/3 in
   a "large items" instance.  The boundary must be placed by exact Rat
   division on the smallest grid point >= W/k. *)
let test_class_boundary_exact () =
  let spec = { Spec.default with Spec.quantum = 10; count = 400 } in
  let wk = r 1 3 in
  (match (Spec.large_items spec ~k:3).Spec.sizes with
  | Spec.Uniform_sizes { lo; _ } ->
      Alcotest.(check bool) "spec bound is a grid point at least W/3" true
        Rat.(Rat.of_float ~den:10 lo >= wk)
  | _ -> Alcotest.fail "expected uniform sizes");
  List.iter
    (fun seed ->
      let large = Generator.generate ~seed (Spec.large_items spec ~k:3) in
      Alcotest.(check bool) "large: every size at least W/3" true
        (Instance.sizes_at_least large wk);
      let small = Generator.generate ~seed (Spec.small_items spec ~k:3) in
      Alcotest.(check bool) "small: every size strictly below W/3" true
        (Instance.sizes_below small wk))
    [ 1L; 2L; 3L ]

let test_generate_many_independent () =
  let runs = Generator.generate_many ~seed:6L Spec.default ~runs:3 in
  Alcotest.(check int) "three runs" 3 (List.length runs);
  match runs with
  | [ a; b; _ ] ->
      Alcotest.(check bool) "runs differ" true
        (not (Array.for_all2 Item.equal (Instance.items a) (Instance.items b)))
  | _ -> Alcotest.fail "unexpected shape"

let test_arrival_models () =
  let batched =
    { Spec.default with Spec.arrivals = Spec.Batched { batches = 4; gap = 5.0 };
      count = 40 }
  in
  let instance = Generator.generate ~seed:7L batched in
  let distinct_arrivals =
    Instance.items instance |> Array.to_list
    |> List.map (fun (i : Item.t) -> i.arrival)
    |> List.sort_uniq Rat.compare
  in
  Alcotest.(check int) "four arrival instants" 4 (List.length distinct_arrivals);
  let uniform =
    { Spec.default with Spec.arrivals = Spec.Uniform_over { horizon = 10.0 } }
  in
  let u = Generator.generate ~seed:8L uniform in
  Alcotest.(check bool) "arrivals within horizon" true
    (Array.for_all
       (fun (i : Item.t) -> Rat.(i.arrival <= Rat.of_float 10.0))
       (Instance.items u))

let rejects_spec ~field spec =
  try
    ignore (Generator.generate spec);
    false
  with Spec.Invalid_spec { field = f; _ } -> String.equal f field

let test_spec_validation () =
  Alcotest.(check bool) "count 0" true
    (rejects_spec ~field:"count" { Spec.default with Spec.count = 0 });
  Alcotest.(check bool) "bad clamps" true
    (rejects_spec ~field:"max_duration"
       { Spec.default with Spec.max_duration = 0.1 })

(* The grid-collapse family: bounds that are fine as floats but
   degenerate once snapped onto the 1/quantum grid, each rejected with
   a structured error naming the offending field. *)
let test_spec_validation_grid () =
  Alcotest.(check bool) "clamp collapses to a grid point" true
    (rejects_spec ~field:"max_duration"
       {
         Spec.default with
         Spec.min_duration = 1.0;
         Spec.max_duration = 1.0000001;
       });
  Alcotest.(check bool) "min duration collapses to zero" true
    (rejects_spec ~field:"min_duration"
       { Spec.default with Spec.min_duration = 1e-9 });
  Alcotest.(check bool) "inverted duration model" true
    (rejects_spec ~field:"durations"
       {
         Spec.default with
         Spec.durations = Spec.Uniform_durations { lo = 5.0; hi = 2.0 };
       });
  Alcotest.(check bool) "empty size catalog" true
    (rejects_spec ~field:"sizes"
       { Spec.default with Spec.sizes = Spec.Discrete_sizes [] });
  Alcotest.(check bool) "all-zero catalog weights" true
    (rejects_spec ~field:"sizes"
       { Spec.default with Spec.sizes = Spec.Discrete_sizes [ (r 1 2, 0.0) ] });
  Alcotest.(check bool) "oversized catalog entry" true
    (rejects_spec ~field:"sizes"
       { Spec.default with Spec.sizes = Spec.Discrete_sizes [ (ri 2, 1.0) ] });
  Alcotest.(check bool) "uniform sizes collapse on the grid" true
    (rejects_spec ~field:"sizes"
       {
         Spec.default with
         Spec.sizes = Spec.Uniform_sizes { lo = 0.0; hi = 1e-9 };
       });
  (* the healthy default passes, and Spec.check mirrors the exception *)
  Spec.validate Spec.default;
  Alcotest.(check bool) "check Ok" true (Spec.check Spec.default = Ok ());
  Alcotest.(check bool) "check Error carries the field" true
    (match Spec.check { Spec.default with Spec.count = 0 } with
    | Error msg -> String.length msg >= 5 && String.sub msg 0 5 = "count"
    | Ok () -> false)

(* Exact snapping at the grid boundaries (quantum 10000, W = 1,
   clamp [1, 10]): sizes land in (0, W], durations in [min, max], and
   a sub-capacity uniform upper bound is exclusive. *)
let test_grid_boundaries () =
  let spec = Spec.default in
  let step = r 1 10_000 in
  check_rat "zero size draw snaps up one step" step
    (Generator.size_on_grid spec 0.0);
  check_rat "negative size draw snaps up one step" step
    (Generator.size_on_grid spec (-3.0));
  check_rat "oversized draw clamps to capacity" Rat.one
    (Generator.size_on_grid spec 2.0);
  let sub =
    { spec with Spec.sizes = Spec.Uniform_sizes { lo = 0.0; hi = 0.5 } }
  in
  check_rat "draw at a sub-capacity hi lands one step below"
    (Rat.sub (r 1 2) step)
    (Generator.size_on_grid sub 0.5);
  check_rat "draw above a sub-capacity hi lands one step below"
    (Rat.sub (r 1 2) step)
    (Generator.size_on_grid sub 0.9);
  check_rat "draw below hi is kept exactly" (r 1 4)
    (Generator.size_on_grid sub 0.25);
  check_rat "short duration clamps to min" Rat.one
    (Generator.duration_on_grid spec 0.2);
  check_rat "long duration clamps to max" (ri 10)
    (Generator.duration_on_grid spec 99.0);
  check_rat "interior duration snaps exactly" (r 5 2)
    (Generator.duration_on_grid spec 2.5)

let test_trace_round_trip () =
  let instance = Generator.generate ~seed:9L { Spec.default with Spec.count = 25 } in
  let text = Trace.to_string instance in
  let back = Trace.of_string text in
  Alcotest.(check bool) "items round-trip" true
    (Array.for_all2 Item.equal (Instance.items instance) (Instance.items back));
  check_rat "capacity round-trips" (Instance.capacity instance)
    (Instance.capacity back)

let test_trace_file_round_trip () =
  let instance = Patterns.fragmentation ~k:3 ~mu:(ri 4) in
  let path = Filename.temp_file "dbp_trace" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save instance ~path;
      let back = Trace.load ~path in
      Alcotest.(check int) "size" (Instance.size instance) (Instance.size back))

(* Every malformed trace must surface as a structured [Parse_error]
   carrying the 1-based line and offending field, never a bare
   [Failure] (which the CLI would render as a backtrace). *)
let parse_error_of text =
  match Trace.of_string text with
  | _ -> Alcotest.failf "parse unexpectedly succeeded on %S" text
  | exception Trace.Parse_error e -> e

let test_trace_errors () =
  let e = parse_error_of "id,size,arrival,departure\n0,1/2,0,1\n" in
  Alcotest.(check int) "missing header: line" 1 e.Trace.line;
  Alcotest.(check bool) "missing header: message mentions capacity" true
    (contains ~sub:"capacity" e.Trace.message);
  let e = parse_error_of "# capacity=1\nid,size,arrival,departure\nxx\n" in
  Alcotest.(check int) "malformed row: line" 3 e.Trace.line;
  let e = parse_error_of "# capacity=zero\nid,size,arrival,departure\n" in
  Alcotest.(check (option string)) "bad capacity: field" (Some "capacity")
    e.Trace.field;
  let e = parse_error_of "# capacity=1\n0,1/2,0,1\n" in
  Alcotest.(check int) "missing column header: line" 2 e.Trace.line;
  Alcotest.(check bool) "missing column header: message" true
    (contains ~sub:"column header" e.Trace.message)

let test_trace_field_errors () =
  (* Blank lines are skipped but must not shift reported line numbers. *)
  let e =
    parse_error_of "# capacity=1\n\nid,size,arrival,departure\n\n0,1/2,0,oops\n"
  in
  Alcotest.(check int) "non-rational departure: line" 5 e.Trace.line;
  Alcotest.(check (option string)) "non-rational departure: field"
    (Some "departure") e.Trace.field;
  let e =
    parse_error_of "# capacity=1\nid,size,arrival,departure\n0,1/2,3,2\n"
  in
  Alcotest.(check (option string)) "departure before arrival: field"
    (Some "departure") e.Trace.field;
  Alcotest.(check int) "departure before arrival: line" 3 e.Trace.line;
  let e =
    parse_error_of "# capacity=1\nid,size,arrival,departure\n0,3/2,0,1\n"
  in
  Alcotest.(check (option string)) "oversized item: field" (Some "size")
    e.Trace.field;
  let e =
    parse_error_of "# capacity=1\nid,size,arrival,departure\n0,1/2,0\n"
  in
  Alcotest.(check bool) "wrong field count: message" true
    (contains ~sub:"4 comma-separated fields" e.Trace.message);
  let e = parse_error_of "# capacity=1\nid,size,arrival,departure\n" in
  Alcotest.(check bool) "no data rows: message" true
    (contains ~sub:"no item rows" e.Trace.message);
  (* The rendered form carries line and field for CLI diagnostics. *)
  let e =
    parse_error_of "# capacity=1\nid,size,arrival,departure\n0,nope,0,1\n"
  in
  let rendered = Trace.parse_error_to_string e in
  Alcotest.(check bool) "rendered error names the line" true
    (contains ~sub:"line 3" rendered);
  Alcotest.(check bool) "rendered error names the field" true
    (contains ~sub:"'size'" rendered)

(* The id column is parsed and preserved: rows may arrive shuffled, as
   long as the ids form a permutation of 0..n-1. *)
let test_trace_ids_preserved () =
  let shuffled =
    "# capacity=1\n\
     id,size,arrival,departure\n\
     2,1/4,2,5\n\
     0,1/2,0,2\n\
     1,1/3,1,3\n"
  in
  let instance = Trace.of_string shuffled in
  Alcotest.(check int) "three items" 3 (Instance.size instance);
  let item i = Instance.item instance i in
  check_rat "id 0 keeps its size" (r 1 2) (item 0).Item.size;
  check_rat "id 1 keeps its arrival" Rat.one (item 1).Item.arrival;
  check_rat "id 2 keeps its departure" (ri 5) (item 2).Item.departure;
  (* shuffling rows changes nothing: same instance as the sorted text *)
  let sorted =
    "# capacity=1\n\
     id,size,arrival,departure\n\
     0,1/2,0,2\n\
     1,1/3,1,3\n\
     2,1/4,2,5\n"
  in
  Alcotest.(check bool) "row order is irrelevant" true
    (Array.for_all2 Item.equal (Instance.items instance)
       (Instance.items (Trace.of_string sorted)))

let test_trace_id_errors () =
  let e =
    parse_error_of
      "# capacity=1\nid,size,arrival,departure\n0,1/2,0,1\n0,1/3,0,1\n"
  in
  Alcotest.(check (option string)) "duplicate id: field" (Some "id")
    e.Trace.field;
  Alcotest.(check int) "duplicate id: reported at the second use" 4
    e.Trace.line;
  Alcotest.(check bool) "duplicate id: names the first line" true
    (contains ~sub:"line 3" e.Trace.message);
  let e =
    parse_error_of "# capacity=1\nid,size,arrival,departure\n5,1/2,0,1\n"
  in
  Alcotest.(check (option string)) "out-of-range id: field" (Some "id")
    e.Trace.field;
  Alcotest.(check bool) "out-of-range id: message mentions permutation" true
    (contains ~sub:"permutation" e.Trace.message);
  let e =
    parse_error_of "# capacity=1\nid,size,arrival,departure\n-1,1/2,0,1\n"
  in
  Alcotest.(check bool) "negative id rejected" true
    (contains ~sub:"negative" e.Trace.message);
  let e =
    parse_error_of "# capacity=1\nid,size,arrival,departure\nx,1/2,0,1\n"
  in
  Alcotest.(check (option string)) "non-integer id: field" (Some "id")
    e.Trace.field;
  (* the column header must match exactly, not just start with 'i' *)
  let e = parse_error_of "# capacity=1\nignored,junk\n0,1/2,0,1\n" in
  Alcotest.(check int) "wrong column header: line" 2 e.Trace.line;
  Alcotest.(check bool) "wrong column header: message" true
    (contains ~sub:"id,size,arrival,departure" e.Trace.message)

let test_patterns () =
  let frag = Patterns.fragmentation ~k:3 ~mu:(ri 2) in
  Alcotest.(check int) "fragmentation items" 9 (Instance.size frag);
  check_rat "fragmentation mu" (ri 2) (Instance.mu frag);
  let stair = Patterns.staircase ~steps:5 ~step_length:Rat.one in
  Alcotest.(check int) "staircase items" 5 (Instance.size stair);
  let packing = Simulator.run ~policy:First_fit.policy stair in
  Alcotest.(check int) "staircase window of 2" 2 packing.Packing.max_bins;
  (* every algorithm is optimal on the staircase *)
  let opt = Dbp_opt.Opt_total.compute stair in
  check_rat "staircase ratio 1" packing.Packing.total_cost
    (Dbp_opt.Opt_total.value_exn opt);
  let saw = Patterns.sawtooth ~teeth:3 ~per_tooth:4 ~mu:(ri 3) in
  Alcotest.(check int) "sawtooth items" 12 (Instance.size saw);
  let pc = Patterns.pairwise_conflict ~pairs:3 in
  let pc_ff = Simulator.run ~policy:First_fit.policy pc in
  Alcotest.(check int) "pairwise conflicts need 2 bins" 2
    pc_ff.Packing.max_bins;
  let spike = Patterns.spike ~base:6 ~spike_height:4 in
  Alcotest.(check int) "spike items" 10 (Instance.size spike)

let spec_gen =
  QCheck2.Gen.(
    map3
      (fun count mu seed ->
        ( { (Spec.with_target_mu Spec.default ~mu:(float_of_int mu)) with
            Spec.count },
          Int64.of_int seed ))
      (int_range 1 60) (int_range 1 12) (int_range 0 10_000))

let prop_tests =
  [
    qcheck ~count:80 "generated instances satisfy their spec" spec_gen
      (fun (spec, seed) ->
        let instance = Generator.generate ~seed spec in
        Instance.size instance = spec.Spec.count
        && Rat.(Instance.max_size instance <= spec.Spec.capacity)
        && Rat.(
             Instance.min_interval_length instance
             >= Rat.of_float spec.Spec.min_duration)
        && Rat.(
             Instance.max_interval_length instance
             <= Rat.of_float spec.Spec.max_duration));
    qcheck ~count:80 "trace round-trips for generated instances" spec_gen
      (fun (spec, seed) ->
        let instance = Generator.generate ~seed spec in
        let back = Trace.of_string (Trace.to_string instance) in
        Array.for_all2 Item.equal (Instance.items instance)
          (Instance.items back));
    qcheck ~count:80 "reversed trace rows load identically" spec_gen
      (fun (spec, seed) ->
        (* ids are preserved, so any row permutation — reversal is one —
           must reproduce the same instance, item for item *)
        let instance = Generator.generate ~seed spec in
        match String.split_on_char '\n' (Trace.to_string instance) with
        | cap :: header :: rows ->
            let rows = List.filter (fun l -> l <> "") rows in
            let shuffled =
              String.concat "\n" (cap :: header :: List.rev rows) ^ "\n"
            in
            let back = Trace.of_string shuffled in
            Array.for_all2 Item.equal (Instance.items instance)
              (Instance.items back)
        | _ -> false);
  ]

let suite =
  [
    Alcotest.test_case "generator determinism" `Quick test_generator_determinism;
    Alcotest.test_case "clamps respected" `Quick test_generator_respects_clamps;
    Alcotest.test_case "small-items regime" `Quick test_small_items_regime;
    Alcotest.test_case "large-items regime" `Quick test_large_items_regime;
    Alcotest.test_case "class boundary off-grid" `Quick
      test_class_boundary_exact;
    Alcotest.test_case "generate_many" `Quick test_generate_many_independent;
    Alcotest.test_case "arrival models" `Quick test_arrival_models;
    Alcotest.test_case "spec validation" `Quick test_spec_validation;
    Alcotest.test_case "spec validation on the grid" `Quick
      test_spec_validation_grid;
    Alcotest.test_case "grid boundaries" `Quick test_grid_boundaries;
    Alcotest.test_case "trace round trip" `Quick test_trace_round_trip;
    Alcotest.test_case "trace file round trip" `Quick test_trace_file_round_trip;
    Alcotest.test_case "trace errors" `Quick test_trace_errors;
    Alcotest.test_case "trace field errors" `Quick test_trace_field_errors;
    Alcotest.test_case "trace ids preserved" `Quick test_trace_ids_preserved;
    Alcotest.test_case "trace id errors" `Quick test_trace_id_errors;
    Alcotest.test_case "patterns" `Quick test_patterns;
  ]
  @ prop_tests

let test_fragmentation_fine () =
  let instance = Patterns.fragmentation_fine ~bins:4 ~per_bin:8 ~mu:(ri 6) in
  Alcotest.(check int) "items" 32 (Instance.size instance);
  Alcotest.(check bool) "sizes strictly below W/4" true
    (Instance.sizes_below instance (r 1 4));
  check_rat "mu" (ri 6) (Instance.mu instance);
  let ff = Simulator.run ~policy:First_fit.policy instance in
  Alcotest.(check int) "FF fills 4 bins" 4 (Packing.bins_used ff);
  check_rat "FF pays bins*mu" (ri 24) ff.Packing.total_cost;
  (* forced ratio = bins*mu/(bins+mu-1) exactly *)
  let ratio = Dbp_analysis.Ratio.measure ff in
  check_rat "forced ratio" (r 24 9) (Dbp_analysis.Ratio.value_exn ratio);
  Alcotest.(check bool) "param validation" true
    (try
       ignore (Patterns.fragmentation_fine ~bins:0 ~per_bin:1 ~mu:Rat.one);
       false
     with Invalid_argument _ -> true)

let suite =
  suite
  @ [ Alcotest.test_case "fragmentation fine" `Quick test_fragmentation_fine ]
