(* Shared test helpers: Alcotest testables, QCheck generators for exact
   rationals and DBP instances, and convenience runners. *)

open Dbp_num
open Dbp_core

let rat = Alcotest.testable Rat.pp Rat.equal
let interval = Alcotest.testable Interval.pp Interval.equal
let step_fn = Alcotest.testable Step_fn.pp Step_fn.equal

let check_rat = Alcotest.check rat
let r = Rat.make
let ri = Rat.of_int

(* QCheck generator: rationals n/d with n in [lo_num, hi_num],
   d in [1, max_den]. *)
let rat_gen ?(lo_num = -100) ?(hi_num = 100) ?(max_den = 20) () =
  QCheck2.Gen.(
    map2
      (fun n d -> Rat.make n d)
      (int_range lo_num hi_num)
      (int_range 1 max_den))

let pos_rat_gen ?(hi_num = 100) ?(max_den = 20) () =
  QCheck2.Gen.(
    map2 (fun n d -> Rat.make n d) (int_range 1 hi_num) (int_range 1 max_den))

(* Random instance on capacity 1: sizes i/12 (1 <= i <= 12), arrivals
   on a small integer-grid, durations in [1, mu_max]. *)
let instance_gen ?(max_items = 30) ?(mu_max = 8) () =
  QCheck2.Gen.(
    let item_gen =
      map3
        (fun size_num arr dur_frac ->
          let size = Rat.make size_num 12 in
          let arrival = Rat.make arr 4 in
          let duration =
            Rat.add Rat.one
              (Rat.make (dur_frac mod ((mu_max - 1) * 4)) 4)
          in
          Item.make ~id:0 ~size ~arrival ~departure:(Rat.add arrival duration))
        (int_range 1 12) (int_range 0 80) (int_range 0 1000)
    in
    map
      (fun items -> Instance.create ~capacity:Rat.one items)
      (list_size (int_range 1 max_items) item_gen))

(* Small-item variant: sizes < 1/k. *)
let small_instance_gen ?(max_items = 30) ?(mu_max = 8) ~k () =
  QCheck2.Gen.(
    let denom = 6 * k in
    let item_gen =
      map3
        (fun size_num arr dur_frac ->
          let size = Rat.make size_num denom in
          let arrival = Rat.make arr 4 in
          let duration =
            Rat.add Rat.one
              (Rat.make (dur_frac mod ((mu_max - 1) * 4)) 4)
          in
          Item.make ~id:0 ~size ~arrival ~departure:(Rat.add arrival duration))
        (int_range 1 5) (int_range 0 80) (int_range 0 1000)
    in
    map
      (fun items -> Instance.create ~capacity:Rat.one items)
      (list_size (int_range 1 max_items) item_gen))

let qcheck ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

let run_all_policies instance =
  List.map
    (fun policy -> Simulator.run ~policy instance)
    (Algorithms.all ())

let assert_valid_packing packing =
  match Packing.validate packing with
  | Ok () -> ()
  | Error msg ->
      Alcotest.failf "invalid packing by %s: %s" packing.Packing.policy_name
        msg

(* Substring check without extra deps. *)
let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0
